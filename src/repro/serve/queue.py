"""Durable job queue: an append-only JSONL journal with crash recovery.

A *job* is one client submission — a named tenant plus an ordered list
of :class:`~repro.exp.spec.ExperimentSpec` — moving through the states
``pending → running → done|failed|cancelled``.  The queue survives
restarts because every mutation is appended to a journal
(``queue.jsonl`` in the queue directory) and fsynced before the caller
sees it:

* ``{"kind": "submit", "job": {...}}`` — a new job, full payload;
* ``{"kind": "state", "job_id": ..., "state": ...}`` — a transition,
  carrying the timestamps, error and telemetry that changed with it.

**Recovery** replays the journal on open.  A truncated or corrupt
*trailing* record is the signature of a crash mid-append: it is dropped
with a one-line warning naming the line (the same convention the
observability log readers use), never a traceback.  A corrupt record
anywhere *else* means real corruption and raises
:class:`~repro.common.errors.ServeError` with the line number.  Jobs
that were ``running`` when the process died are requeued as ``pending``
— the result cache makes re-execution cheap, and the requeue itself is
journaled so a second crash cannot lose it.

**Compaction** rewrites the journal as one ``submit`` record per live
job (atomic temp-file + ``os.replace``), automatically once the journal
accumulates :data:`COMPACT_EVERY` records and always on ``close``.

**Single writer.**  The queue takes a non-blocking
:class:`~repro.common.locks.FileLock` on the journal for its lifetime,
so a second ``repro serve`` pointed at the same directory fails fast
instead of interleaving appends.  In-process access is serialized by an
internal mutex; many *clients* talk to the single owning process over
the HTTP API instead of touching the journal.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.common.errors import LockTimeout, ServeError
from repro.common.locks import FileLock
from repro.exp.spec import ExperimentSpec

logger = logging.getLogger("repro.serve")

#: Journal record format version (folded into every record).
JOURNAL_VERSION = 1

#: Journal file name inside the queue directory.
JOURNAL_NAME = "queue.jsonl"

#: Auto-compact once the journal holds this many records.
COMPACT_EVERY = 512

ACTIVE_STATES = ("pending", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")
JOB_STATES = ACTIVE_STATES + TERMINAL_STATES


def _new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submission moving through the queue."""

    job_id: str
    tenant: str
    specs: List[ExperimentSpec]
    state: str = "pending"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Set while a *running* job has been asked to cancel; the scheduler
    #: observes it cooperatively (pending jobs cancel immediately).
    cancel_requested: bool = False
    #: Filled at completion: timings, executed/cached/deduped counts,
    #: the per-job profiler RunReport and the attribution summary.
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        """Is the job in a final state?"""
        return self.state in TERMINAL_STATES

    def spec_hashes(self) -> List[str]:
        """The content hash of each spec, in submission order."""
        return [spec.spec_hash() for spec in self.specs]

    def queue_wait_s(self) -> Optional[float]:
        """Seconds spent pending before the scheduler claimed the job."""
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    def to_dict(self, specs: bool = True) -> Dict[str, Any]:
        """JSON-safe snapshot (``specs=False`` for compact listings)."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "n_specs": len(self.specs),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "telemetry": dict(self.telemetry),
        }
        if specs:
            out["specs"] = [spec.to_dict() for spec in self.specs]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        """Rebuild (and re-validate) a job from :meth:`to_dict` output."""
        try:
            specs = [ExperimentSpec.from_dict(s) for s in data["specs"]]
            state = str(data.get("state", "pending"))
            if state not in JOB_STATES:
                raise ServeError(f"unknown job state {state!r}")
            return cls(
                job_id=str(data["job_id"]),
                tenant=str(data.get("tenant", "default")),
                specs=specs,
                state=state,
                submitted_at=float(data.get("submitted_at", 0.0)),
                started_at=data.get("started_at"),
                finished_at=data.get("finished_at"),
                error=data.get("error"),
                cancel_requested=bool(data.get("cancel_requested", False)),
                telemetry=dict(data.get("telemetry") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed job payload: {exc}") from exc


class JobQueue:
    """The durable, journaled queue one serve process owns."""

    def __init__(
        self,
        directory: Union[str, Path],
        compact_every: int = COMPACT_EVERY,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_NAME
        self.compact_every = max(2, int(compact_every))
        self._mu = threading.RLock()
        self._flock = FileLock.for_path(self.path)
        try:
            self._flock.acquire(timeout=0)
        except LockTimeout:
            raise ServeError(
                f"queue journal {self.path} is already owned by another "
                f"process (is a 'repro serve' running on this directory?)"
            ) from None
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._records = 0
        self._fh = None
        try:
            requeued = self._recover()
            self._fh = open(self.path, "a", encoding="utf-8")
            # Journal the crash requeues so a second crash cannot lose
            # them; this also re-persists cancel_requested resets.
            for job_id in requeued:
                self._append_state(self._jobs[job_id])
        except BaseException:
            self._flock.release()
            raise

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Compact, flush, and release journal ownership."""
        with self._mu:
            if self._fh is None:
                return
            self.compact()
            self._fh.close()
            self._fh = None
            self._flock.release()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- journal ---------------------------------------------------------------

    def _recover(self) -> List[str]:
        """Replay the journal; returns job ids requeued running→pending."""
        if not self.path.is_file():
            return []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        numbered = [
            (i, line) for i, line in enumerate(lines, 1) if line.strip()
        ]
        for position, (lineno, line) in enumerate(numbered):
            trailing = position == len(numbered) - 1
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("expected a JSON object")
                self._apply(record, lineno)
            except (ValueError, KeyError, TypeError, ServeError) as exc:
                if trailing:
                    logger.warning(
                        "%s:%d: dropping truncated trailing record (%s)",
                        self.path, lineno, exc,
                    )
                    break
                raise ServeError(
                    f"{self.path}:{lineno}: corrupt journal record: {exc}"
                ) from exc
            self._records += 1
        requeued = []
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state == "running":
                # The owning process died mid-job; results it completed
                # are in the shared cache, so re-running is cheap.
                job.state = "pending"
                job.started_at = None
                job.cancel_requested = False
                requeued.append(job_id)
        return requeued

    def _apply(self, record: Dict[str, Any], lineno: int) -> None:
        kind = record.get("kind")
        if kind == "submit":
            job = Job.from_dict(record["job"])
            if job.job_id not in self._jobs:
                self._order.append(job.job_id)
            self._jobs[job.job_id] = job
        elif kind == "state":
            job = self._jobs.get(str(record.get("job_id")))
            if job is None:
                logger.warning(
                    "%s:%d: state record for unknown job %r (skipped)",
                    self.path, lineno, record.get("job_id"),
                )
                return
            state = str(record["state"])
            if state not in JOB_STATES:
                raise ServeError(f"unknown job state {state!r}")
            job.state = state
            job.started_at = record.get("started_at", job.started_at)
            job.finished_at = record.get("finished_at", job.finished_at)
            job.error = record.get("error", job.error)
            job.cancel_requested = bool(
                record.get("cancel_requested", job.cancel_requested)
            )
            if record.get("telemetry") is not None:
                job.telemetry = dict(record["telemetry"])
        else:
            raise ServeError(f"unknown journal record kind {kind!r}")

    def _append(self, record: Dict[str, Any]) -> None:
        record = {"v": JOURNAL_VERSION, "t": time.time(), **record}
        self._fh.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records += 1
        if self._records >= self.compact_every:
            self.compact()

    def _append_state(self, job: Job) -> None:
        self._append(
            {
                "kind": "state",
                "job_id": job.job_id,
                "state": job.state,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "error": job.error,
                "cancel_requested": job.cancel_requested,
                "telemetry": job.telemetry or None,
            }
        )

    def compact(self) -> int:
        """Atomically rewrite the journal as one record per live job.

        Returns the number of records dropped.  Safe at any point: the
        snapshot is written to a temp file in the queue directory and
        swapped in with ``os.replace``, so a crash mid-compaction leaves
        either the old journal or the new one, never a mix.
        """
        with self._mu:
            before = self._records
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), prefix=".queue-", suffix=".jsonl"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for job_id in self._order:
                        record = {
                            "v": JOURNAL_VERSION,
                            "t": time.time(),
                            "kind": "submit",
                            "job": self._jobs[job_id].to_dict(),
                        }
                        fh.write(
                            json.dumps(
                                record, sort_keys=True, separators=(",", ":")
                            )
                            + "\n"
                        )
                    fh.flush()
                    os.fsync(fh.fileno())
                if self._fh is not None:
                    self._fh.close()
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            finally:
                if self._fh is not None:
                    self._fh = open(self.path, "a", encoding="utf-8")
            self._records = len(self._order)
            return before - self._records

    # -- operations ------------------------------------------------------------

    def submit(
        self,
        specs: Iterable[ExperimentSpec],
        tenant: str = "default",
    ) -> Job:
        """Append a new pending job; durable once this returns."""
        specs = list(specs)
        if not specs:
            raise ServeError("a job needs at least one spec")
        with self._mu:
            job = Job(
                job_id=_new_job_id(),
                tenant=str(tenant) or "default",
                specs=specs,
                submitted_at=time.time(),
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._append({"kind": "submit", "job": job.to_dict()})
            return job

    def claim_next(self) -> Optional[Job]:
        """Atomically move the oldest pending job to ``running``."""
        with self._mu:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.state == "pending":
                    job.state = "running"
                    job.started_at = time.time()
                    self._append_state(job)
                    return job
            return None

    def mark_done(self, job_id: str, telemetry: Dict[str, Any]) -> Job:
        """Record successful completion (with telemetry)."""
        return self._finish(job_id, "done", telemetry=telemetry)

    def mark_failed(
        self,
        job_id: str,
        error: str,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Record failure; ``error`` is a one-line summary for clients."""
        return self._finish(job_id, "failed", error=error, telemetry=telemetry)

    def mark_cancelled(
        self, job_id: str, telemetry: Optional[Dict[str, Any]] = None
    ) -> Job:
        """Record cancellation of a running job."""
        return self._finish(job_id, "cancelled", telemetry=telemetry)

    def _finish(
        self,
        job_id: str,
        state: str,
        error: Optional[str] = None,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> Job:
        with self._mu:
            job = self.get(job_id)
            if job.terminal:
                raise ServeError(
                    f"job {job_id} is already {job.state}; cannot mark "
                    f"{state}"
                )
            job.state = state
            job.finished_at = time.time()
            job.error = error
            if telemetry is not None:
                job.telemetry = dict(telemetry)
            self._append_state(job)
            return job

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when pending, cooperatively when
        running (the scheduler stops its sweep between tasks), a no-op
        once terminal."""
        with self._mu:
            job = self.get(job_id)
            if job.state == "pending":
                job.state = "cancelled"
                job.finished_at = time.time()
                self._append_state(job)
            elif job.state == "running" and not job.cancel_requested:
                job.cancel_requested = True
                self._append_state(job)
            return job

    # -- queries ---------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``; raises :class:`ServeError` if unknown."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    def jobs(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
    ) -> List[Job]:
        """Jobs in submission order, optionally filtered."""
        with self._mu:
            out = [self._jobs[job_id] for job_id in self._order]
        if tenant is not None:
            out = [j for j in out if j.tenant == tenant]
        if state is not None:
            out = [j for j in out if j.state == state]
        return out

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over every known job (all states present)."""
        out = {state: 0 for state in JOB_STATES}
        with self._mu:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def __len__(self) -> int:
        return len(self._jobs)

"""The status/results API: stdlib HTTP in front of the scheduler.

A deliberately small, local-first service — ``http.server`` with a
threading mixin, JSON bodies, no authentication (bind it to loopback).
The server binds an ephemeral port by default (``port=0``) and writes a
discovery file, ``serve.json``, into the serve directory so clients on
the same machine find it without configuration:

.. code-block:: json

    {"url": "http://127.0.0.1:43721", "pid": 4242, "started_at": ...}

Endpoints (all JSON):

==================================  =======================================
``GET  /health``                    liveness + pid + queue counts
``GET  /jobs``                      job summaries (``?tenant=&state=``)
``GET  /jobs/<id>``                 one job, including its specs
``GET  /jobs/<id>/results``         cached results for a finished job
``POST /submit``                    ``{"specs": [...], "tenant": "..."}``
``POST /jobs/<id>/cancel``          request cancellation
``GET  /metrics``                   the scheduler's metric namespace
``GET  /metrics?format=prom``       same, as Prometheus text exposition
``GET  /history/summary``           run-history trend rollups
==================================  =======================================

``/metrics?format=prom`` is the one non-JSON endpoint (``text/plain``,
exposition format 0.0.4).  ``/history/summary`` is 404 unless the
scheduler was built with a history store (``repro serve`` wires one by
default).

Errors follow the queue's convention: unknown job ids are 404, malformed
requests are 400, both with a one-line ``{"error": ...}`` body.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import ServeError
from repro.exp.spec import ExperimentSpec
from repro.obs.registry import prom_exposition
from repro.serve.queue import JOB_STATES
from repro.serve.scheduler import Scheduler

#: Environment variable overriding the serve directory.
SERVE_DIR_ENV = "REPRO_SERVE_DIR"

#: Discovery file written next to the queue journal while serving.
ENDPOINT_FILE = "serve.json"


def default_serve_dir() -> Path:
    """``$REPRO_SERVE_DIR`` or ``~/.cache/repro/serve``."""
    env = os.environ.get(SERVE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "serve"


class TextResponse:
    """A non-JSON reply from :meth:`ServeServer.handle` (e.g. prom text)."""

    __slots__ = ("body", "content_type")

    def __init__(
        self,
        body: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.body = body
        self.content_type = content_type


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ServeServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # the serve loop has its own logger, so silence the built-in one.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    @property
    def serve(self) -> "ServeServer":
        return self.server.serve  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _reply_text(self, status: int, response: "TextResponse") -> None:
        self._send(
            status, response.body.encode("utf-8"), response.content_type
        )

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServeError("empty request body")
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(f"request body is not JSON: {exc}")
        if not isinstance(data, dict):
            raise ServeError("request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        try:
            handled = self.serve.handle(method, segments, query, self._body
                                        if method == "POST" else None)
        except ServeError as exc:
            status = 404 if getattr(exc, "not_found", False) else 400
            self._error(status, str(exc))
            return
        if handled is None:
            self._error(404, f"no such endpoint: {method} {parts.path}")
            return
        if isinstance(handled, TextResponse):
            self._reply_text(200, handled)
            return
        self._reply(200, handled)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")


class ServeServer:
    """The HTTP face of a :class:`Scheduler` + :class:`JobQueue` pair."""

    def __init__(
        self,
        scheduler: Scheduler,
        directory: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.directory = Path(directory) if directory else default_serve_dir()
        self.host = host
        self.requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        """The bound address (valid after :meth:`start`)."""
        if self._httpd is None:
            raise ServeError("the server is not running")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def endpoint_path(self) -> Path:
        return self.directory / ENDPOINT_FILE

    def start(self) -> None:
        """Bind, publish ``serve.json``, start scheduler + HTTP thread."""
        if self._httpd is not None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        httpd = ThreadingHTTPServer((self.host, self.requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.serve = self  # type: ignore[attr-defined]
        self._httpd = httpd
        self.started_at = time.time()
        self._write_endpoint()
        self.scheduler.start()
        # serve_forever must run off the caller's thread: shutdown()
        # deadlocks when called from the serving thread itself, and the
        # CLI's main thread has to stay free to wait on signals.
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting requests, stop the scheduler, drop serve.json."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.scheduler.stop()
        try:
            self.endpoint_path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "ServeServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _write_endpoint(self) -> None:
        """Atomically publish the discovery file (readers never see a torn one)."""
        payload = {
            "url": self.url,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "queue": str(self.scheduler.queue.path),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.directory), prefix=".tmp-", suffix=".json"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.endpoint_path)

    # -- routing ---------------------------------------------------------------

    def handle(
        self,
        method: str,
        segments: List[str],
        query: Dict[str, str],
        body_fn,
    ) -> Optional[Union[Dict[str, Any], TextResponse]]:
        """Resolve one request; ``None`` means no such route (404)."""
        if method == "GET":
            if segments == ["health"]:
                return self._health()
            if segments == ["metrics"]:
                collected = self.scheduler.metrics.collect()
                if query.get("format") == "prom":
                    return TextResponse(prom_exposition(collected))
                return {"metrics": collected}
            if segments == ["history", "summary"]:
                return self._history_summary(query)
            if segments == ["jobs"]:
                return self._jobs(query)
            if len(segments) == 2 and segments[0] == "jobs":
                return {"job": self._job(segments[1]).to_dict()}
            if (
                len(segments) == 3
                and segments[0] == "jobs"
                and segments[2] == "results"
            ):
                return self._results(segments[1])
            return None
        if method == "POST":
            if segments == ["submit"]:
                return self._submit(body_fn())
            if (
                len(segments) == 3
                and segments[0] == "jobs"
                and segments[2] == "cancel"
            ):
                job = self.scheduler.cancel(self._job(segments[1]).job_id)
                return {"job": job.to_dict(specs=False)}
            return None
        return None

    def _job(self, job_id: str):
        try:
            return self.scheduler.queue.get(job_id)
        except ServeError as exc:
            exc.not_found = True  # type: ignore[attr-defined]
            raise

    def _history_summary(self, query: Dict[str, str]) -> Dict[str, Any]:
        store = self.scheduler.history
        if store is None:
            exc = ServeError("no history store configured for this server")
            exc.not_found = True  # type: ignore[attr-defined]
            raise exc
        try:
            window = int(query.get("window", "50"))
        except ValueError:
            raise ServeError('"window" must be an integer')
        if window <= 0:
            raise ServeError('"window" must be positive')
        return {"history": store.summary(window=window)}

    def _health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "queue": self.scheduler.queue.counts(),
        }

    def _jobs(self, query: Dict[str, str]) -> Dict[str, Any]:
        state = query.get("state")
        if state is not None and state not in JOB_STATES:
            raise ServeError(
                f"unknown state {state!r}; expected one of {JOB_STATES}"
            )
        jobs = self.scheduler.queue.jobs(
            tenant=query.get("tenant"), state=state
        )
        return {
            "counts": self.scheduler.queue.counts(),
            "jobs": [job.to_dict(specs=False) for job in jobs],
        }

    def _submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        raw_specs = body.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ServeError('"specs" must be a non-empty list of spec dicts')
        try:
            specs = [ExperimentSpec.from_dict(entry) for entry in raw_specs]
        except Exception as exc:
            raise ServeError(f"malformed spec: {exc}")
        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ServeError('"tenant" must be a non-empty string')
        job = self.scheduler.submit(specs, tenant=tenant)
        return {"job": job.to_dict(specs=False)}

    def _results(self, job_id: str) -> Dict[str, Any]:
        job = self._job(job_id)
        results: List[Dict[str, Any]] = []
        missing = 0
        for spec in job.specs:
            result = self.scheduler.cache.get(spec)
            if result is None:
                missing += 1
                results.append({"spec": spec.to_dict(), "result": None})
            else:
                results.append(
                    {"spec": spec.to_dict(), "result": result.to_dict()}
                )
        return {
            "job": job.to_dict(specs=False),
            "results": results,
            "missing": missing,
        }

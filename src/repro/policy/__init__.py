"""The paper's contribution: the migration/replication policy."""

from repro.policy.adaptive import AdaptiveTriggerController, IntervalFeedback
from repro.policy.decision import Action, Decision, Reason, decide, is_shared
from repro.policy.metrics import (
    ALL_METRICS,
    FULL_CACHE,
    FULL_TLB,
    SAMPLED_CACHE,
    SAMPLED_TLB,
    InformationSource,
    Metric,
)
from repro.policy.parameters import PolicyParameters
from repro.policy.placement import (
    first_touch_placement,
    post_facto_placement,
    round_robin_placement,
    static_stall_ns,
)

__all__ = [
    "AdaptiveTriggerController",
    "IntervalFeedback",
    "Action",
    "Decision",
    "Reason",
    "decide",
    "is_shared",
    "ALL_METRICS",
    "FULL_CACHE",
    "FULL_TLB",
    "SAMPLED_CACHE",
    "SAMPLED_TLB",
    "InformationSource",
    "Metric",
    "PolicyParameters",
    "first_touch_placement",
    "post_facto_placement",
    "round_robin_placement",
    "static_stall_ns",
]

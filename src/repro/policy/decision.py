"""The replication/migration decision tree (Figure 1 of the paper).

The caller establishes node 1 (the page is hot — its miss counter for
``cpu`` crossed the trigger threshold — and remote to that CPU); this
module implements nodes 2–3:

* node 2 — *sharing*: if any other processor's miss counter exceeds the
  sharing threshold the page is shared (replication branch); otherwise it
  is effectively private (migration branch);
* node 3a — replication is allowed only if the write counter has not
  exceeded the write threshold and there is no memory pressure;
* node 3b — migration is allowed only if the page has not already been
  migrated more than the migrate threshold permits this interval.

``decide`` is a pure function of its inputs, which makes the policy easy
to property-test: write-shared pages never move, unshared hot pages always
migrate (until the migrate limit), and so on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.policy.parameters import PolicyParameters


class Action(enum.Enum):
    """What the pager should do with a hot page."""

    MIGRATE = "migrate"
    REPLICATE = "replicate"
    NOTHING = "nothing"


class Reason(enum.Enum):
    """Why the decision tree chose its action (for Table 4 analysis)."""

    UNSHARED = "unshared"                     # -> migrate
    SHARED_READ = "shared-read"               # -> replicate
    WRITE_SHARED = "write-shared"             # shared + writes -> nothing
    MEMORY_PRESSURE = "memory-pressure"       # replication suppressed
    MIGRATE_LIMIT = "migrate-limit"           # already migrated this interval
    MIGRATION_DISABLED = "migration-disabled"
    REPLICATION_DISABLED = "replication-disabled"
    HOTSPOT = "hotspot"                       # write-shared, moved anyway


@dataclass(frozen=True)
class Decision:
    """The tree's verdict and the branch that produced it.

    ``target_cpu`` overrides the default migration destination (the
    triggering CPU): hotspot migration sends the page to the *dominant*
    sharer instead.
    """

    action: Action
    reason: Reason
    target_cpu: Optional[int] = None

    def rationale(self) -> str:
        """Compact ``action:reason`` tag used by trace events and logs."""
        tag = f"{self.action.value}:{self.reason.value}"
        if self.target_cpu is not None:
            tag += f"->cpu{self.target_cpu}"
        return tag


def is_shared(
    miss_counts: Sequence[int], cpu: int, sharing_threshold: int
) -> bool:
    """Node 2: does any *other* processor exceed the sharing threshold?"""
    return any(
        count >= sharing_threshold
        for other, count in enumerate(miss_counts)
        if other != cpu
    )


def decide(
    miss_counts: Sequence[int],
    writes: int,
    migrates: int,
    cpu: int,
    params: PolicyParameters,
    memory_pressure: bool = False,
) -> Decision:
    """Run nodes 2–3 of the decision tree for a hot remote page.

    Parameters
    ----------
    miss_counts:
        Per-CPU miss counters for the page this interval.
    writes:
        The page's write counter this interval.
    migrates:
        Times the page has migrated this interval.
    cpu:
        The processor whose counter triggered.
    params:
        Policy thresholds.
    memory_pressure:
        True when the target node is short of free frames, which vetoes
        replication (node 3a).
    """
    if is_shared(miss_counts, cpu, params.sharing_threshold):
        # Replication branch (node 3a).
        if not params.enable_replication:
            return Decision(Action.NOTHING, Reason.REPLICATION_DISABLED)
        if writes >= params.write_threshold:
            return _write_shared_verdict(miss_counts, migrates, cpu, params)
        if memory_pressure:
            return Decision(Action.NOTHING, Reason.MEMORY_PRESSURE)
        return Decision(Action.REPLICATE, Reason.SHARED_READ)
    # Migration branch (node 3b).
    if not params.enable_migration:
        return Decision(Action.NOTHING, Reason.MIGRATION_DISABLED)
    if migrates >= params.migrate_threshold:
        return Decision(Action.NOTHING, Reason.MIGRATE_LIMIT)
    return Decision(Action.MIGRATE, Reason.UNSHARED)


def _write_shared_verdict(
    miss_counts: Sequence[int],
    migrates: int,
    cpu: int,
    params: PolicyParameters,
) -> Decision:
    """Node 3a's veto, or the Section 7.1.2 hotspot-migration extension.

    With ``hotspot_migration`` enabled, a hot write-shared page migrates
    to the node of the processor missing on it hardest — replication is
    impossible, but concentrating the page near its dominant sharer both
    trims remote misses and moves load off the congested home controller.
    """
    if not (params.hotspot_migration and params.enable_migration):
        return Decision(Action.NOTHING, Reason.WRITE_SHARED)
    if migrates >= params.migrate_threshold:
        return Decision(Action.NOTHING, Reason.MIGRATE_LIMIT)
    dominant = max(range(len(miss_counts)), key=lambda c: miss_counts[c])
    return Decision(Action.MIGRATE, Reason.HOTSPOT, target_cpu=int(dominant))

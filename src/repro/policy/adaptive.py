"""Adaptive trigger-threshold selection (Section 8.4's open problem).

The paper: "The trigger threshold is a critical parameter and selecting
the correct trigger value, statically or adaptively, is a topic for
further study."  This module implements the obvious adaptive controller a
kernel could ship: once per reset interval it compares

* the fraction of CPU time the pager burned this interval (overhead
  pressure — the cost of being too aggressive), against
* the fraction of misses still remote (locality headroom — the cost of
  being too timid),

and nudges the trigger multiplicatively: over budget → double the trigger
(calm down); under budget with remote misses left → halve it (press
harder).  Multiplicative moves make the controller stable across the
orders-of-magnitude differences between workloads, and the clamp range
keeps it inside Figure 9's studied regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class IntervalFeedback:
    """What the kernel observed during one reset interval."""

    interval_ns: int            # wall length of the interval
    n_cpus: int
    overhead_ns: float          # pager time spent this interval
    remote_misses: int
    total_misses: int

    @property
    def overhead_fraction(self) -> float:
        """Pager time as a fraction of the interval's total CPU time."""
        budget = self.interval_ns * self.n_cpus
        return self.overhead_ns / budget if budget else 0.0

    @property
    def remote_fraction(self) -> float:
        """Fraction of the interval's misses that were remote."""
        if self.total_misses == 0:
            return 0.0
        return self.remote_misses / self.total_misses


class AdaptiveTriggerController:
    """Per-interval multiplicative trigger adjustment."""

    def __init__(
        self,
        initial_trigger: int = 128,
        min_trigger: int = 16,
        max_trigger: int = 1024,
        overhead_budget: float = 0.12,
        remote_target: float = 0.15,
        step: int = 2,
    ) -> None:
        if not min_trigger <= initial_trigger <= max_trigger:
            raise ConfigurationError("initial trigger outside clamp range")
        if min_trigger <= 0:
            raise ConfigurationError("triggers must be positive")
        if not 0.0 < overhead_budget < 1.0:
            raise ConfigurationError("overhead budget must lie in (0, 1)")
        if not 0.0 <= remote_target < 1.0:
            raise ConfigurationError("remote target must lie in [0, 1)")
        if step < 2:
            raise ConfigurationError("step must be at least 2")
        self.trigger = initial_trigger
        self.min_trigger = min_trigger
        self.max_trigger = max_trigger
        self.overhead_budget = overhead_budget
        self.remote_target = remote_target
        self.step = step
        self.history: List[int] = [initial_trigger]

    def update(self, feedback: IntervalFeedback) -> int:
        """Adjust the trigger for the next interval; returns the new value.

        The two pressures are checked in priority order: blowing the
        overhead budget always backs off (a thrashing pager hurts every
        process), and only a comfortably-idle pager with remote misses
        left to convert presses harder.
        """
        if feedback.overhead_fraction > self.overhead_budget:
            self.trigger = min(self.trigger * self.step, self.max_trigger)
        elif (
            feedback.remote_fraction > self.remote_target
            and feedback.overhead_fraction < self.overhead_budget / 2
        ):
            self.trigger = max(self.trigger // self.step, self.min_trigger)
        self.history.append(self.trigger)
        return self.trigger

    @property
    def settled(self) -> bool:
        """True once the last three intervals used the same trigger."""
        return len(self.history) >= 3 and len(set(self.history[-3:])) == 1

    def register_metrics(self, registry) -> None:
        """Expose the controller's state under ``policy.adaptive``."""
        registry.register_callback(
            "policy.adaptive.trigger", lambda: self.trigger
        )
        registry.register_callback(
            "policy.adaptive.history_len", lambda: len(self.history)
        )
        registry.register_callback(
            "policy.adaptive.settled", lambda: float(self.settled)
        )

"""Static page-placement policies (Section 8.1).

Three static strategies bracket the dynamic policies in Figure 6:

* **round-robin (RR)** — pages spread over nodes in id order, equivalent
  to random allocation; the normalisation baseline;
* **first touch (FT)** — the page lives where the first toucher ran; the
  default policy on CC-NUMA machines and the Section 7 baseline;
* **post-facto (PF)** — the *best possible* static placement, computed
  with perfect future knowledge: each page is placed on the node that
  minimises its total miss stall over the whole trace.

Each builder returns a dense ``numpy`` array mapping page id -> node, so
static stall evaluation is fully vectorised.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.common.errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - avoids a policy <-> trace import cycle
    from repro.trace.record import Trace


def _node_of_cpu_array(n_cpus: int, node_of_cpu: Callable[[int], int]) -> np.ndarray:
    return np.asarray([node_of_cpu(c) for c in range(n_cpus)], dtype=np.int64)


def round_robin_placement(trace: "Trace", n_nodes: int) -> np.ndarray:
    """RR: page ``p`` lives on node ``p mod n_nodes``."""
    if n_nodes <= 0:
        raise TraceError("need at least one node")
    n_pages = trace.max_page_id() + 1
    return np.arange(max(n_pages, 1), dtype=np.int64) % n_nodes


def first_touch_placement(
    trace: "Trace", n_nodes: int, node_of_cpu: Callable[[int], int]
) -> np.ndarray:
    """FT: the page lives on the node of the CPU that first touched it."""
    n_pages = trace.max_page_id() + 1
    placement = np.zeros(max(n_pages, 1), dtype=np.int64)
    if not len(trace):
        return placement
    n_cpus = int(trace.cpu.max()) + 1
    cpu_nodes = _node_of_cpu_array(n_cpus, node_of_cpu)
    # First occurrence of each page in time order (trace is sorted).
    first_idx = np.full(n_pages, -1, dtype=np.int64)
    pages = trace.page
    # np.unique returns first indices for the *sorted* unique values; we
    # need first in time order, which a reverse pass gives us cheaply.
    for i in range(len(pages) - 1, -1, -1):
        first_idx[pages[i]] = i
    touched = first_idx >= 0
    placement[touched] = cpu_nodes[trace.cpu[first_idx[touched]]]
    # Untouched page ids fall back to RR so the array is total.
    placement[~touched] = np.nonzero(~touched)[0] % max(n_nodes, 1)
    return placement


def post_facto_placement(
    trace: "Trace",
    n_nodes: int,
    node_of_cpu: Callable[[int], int],
) -> np.ndarray:
    """PF: per page, the node with the most offered misses wins.

    With a fixed local/remote latency pair, total stall for a page placed
    on node ``n`` is ``misses_local(n) * L_loc + misses_remote(n) * L_rem``;
    minimising it is exactly maximising the misses made local, so the
    argmax over per-node miss weight is the optimal static placement.
    """
    n_pages = trace.max_page_id() + 1
    placement = np.arange(max(n_pages, 1), dtype=np.int64) % max(n_nodes, 1)
    if not len(trace):
        return placement
    n_cpus = int(trace.cpu.max()) + 1
    cpu_nodes = _node_of_cpu_array(n_cpus, node_of_cpu)
    record_nodes = cpu_nodes[trace.cpu]
    # Accumulate miss weight per (page, node) with a flat bincount.
    flat = trace.page * n_nodes + record_nodes
    weights = np.bincount(flat, weights=trace.weight, minlength=n_pages * n_nodes)
    per_page = weights.reshape(n_pages, n_nodes)
    touched = per_page.sum(axis=1) > 0
    placement[touched] = per_page[touched].argmax(axis=1)
    return placement


def static_stall_ns(
    trace: "Trace",
    placement: np.ndarray,
    node_of_cpu: Callable[[int], int],
    local_ns: int,
    remote_ns: int,
) -> tuple:
    """(stall_ns, local_fraction) for a static placement — vectorised."""
    if not len(trace):
        return 0.0, 0.0
    n_cpus = int(trace.cpu.max()) + 1
    cpu_nodes = _node_of_cpu_array(n_cpus, node_of_cpu)
    local = placement[trace.page] == cpu_nodes[trace.cpu]
    weights = trace.weight
    local_misses = int(weights[local].sum())
    total = int(weights.sum())
    stall = local_misses * local_ns + (total - local_misses) * remote_ns
    return float(stall), local_misses / total

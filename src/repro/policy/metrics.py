"""Miss-information sources for the policy (Section 8.3).

Full cache-miss information requires directory-controller support that
many machines lack, so the paper studies four metrics:

* **FC** — full cache-miss information (the Section 7 default);
* **SC** — cache misses sampled 1-in-10;
* **FT** — full TLB-miss information (software-reloaded TLBs make this
  available to the OS with no hardware support);
* **ST** — TLB misses sampled 1-in-10.

The metric changes what drives the policy's *counters*; the stall time a
policy achieves is always evaluated against the cache-miss trace, because
cache misses are what cost time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InformationSource(enum.Enum):
    """What event stream feeds the policy counters."""

    CACHE_MISSES = "cache"
    TLB_MISSES = "tlb"


@dataclass(frozen=True)
class Metric:
    """An information source plus a sampling rate."""

    source: InformationSource
    sampling_rate: int = 1

    def __post_init__(self) -> None:
        if self.sampling_rate <= 0:
            raise ValueError("sampling rate must be >= 1")

    @property
    def label(self) -> str:
        """Short label used in Figure 8 (FC / SC / FT / ST)."""
        first = "F" if self.sampling_rate == 1 else "S"
        second = "C" if self.source is InformationSource.CACHE_MISSES else "T"
        return first + second

    @property
    def uses_tlb(self) -> bool:
        """True when the driver stream is TLB misses."""
        return self.source is InformationSource.TLB_MISSES


FULL_CACHE = Metric(InformationSource.CACHE_MISSES, 1)
SAMPLED_CACHE = Metric(InformationSource.CACHE_MISSES, 10)
FULL_TLB = Metric(InformationSource.TLB_MISSES, 1)
SAMPLED_TLB = Metric(InformationSource.TLB_MISSES, 10)

ALL_METRICS = (FULL_CACHE, SAMPLED_CACHE, FULL_TLB, SAMPLED_TLB)

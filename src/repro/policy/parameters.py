"""Policy parameters (Table 1 of the paper).

The decision tree works on *rates*, which the implementation approximates
with counters reset every ``reset_interval``:

* **trigger threshold** — misses after which a page is "hot" and a
  decision is triggered;
* **sharing threshold** — misses from another processor that make the page
  a replication candidate instead of a migration candidate;
* **write threshold** — writes after which a page is not considered for
  replication;
* **migrate threshold** — migrations after which a page is not considered
  for (further) migration.

The *base policy* of Section 7 uses trigger 128 (96 for the engineering
workload), sharing = trigger/4, write = migrate = 1, reset interval
100 ms.  Section 8's dynamic policies use the same values with trigger
fixed at 128/sharing 32.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import MS


@dataclass(frozen=True)
class PolicyParameters:
    """Tunable knobs of the migration/replication policy."""

    trigger_threshold: int = 128
    sharing_threshold: int = 32
    write_threshold: int = 1
    migrate_threshold: int = 1
    reset_interval_ns: int = 100 * MS
    sampling_rate: int = 1        # count 1 in N misses (Section 8.3)
    batch_pages: int = 4          # hot pages collected per pager interrupt
    enable_migration: bool = True
    enable_replication: bool = True
    hotspot_migration: bool = False
    """The extension Section 7.1.2 proposes as future work: when a hot
    write-shared page cannot be replicated, migrate it to the dominant
    sharer's node anyway, trading one node's controller congestion for
    fewer total remote misses."""

    enable_pt_replication: bool = False
    """Replicate a process's page table onto a node once that node's
    remote-walk counter crosses :attr:`pt_trigger_threshold` (the
    Mitosis mechanism; see :mod:`repro.ptpol`)."""

    enable_thread_migration: bool = False
    """On a PT trigger, let the co-placement policy arbitrate between
    replicating the page table and re-homing the thread next to it
    (the Phoenix mechanism); implies PT replication as the fallback."""

    pt_trigger_threshold: int = 64
    """Remote page-table walks (per process per node, per reset
    interval) after which the PT policy acts — the walk-counter analog
    of :attr:`trigger_threshold`."""

    max_thread_migrations: int = 1
    """Thread re-homings allowed per process per reset interval, so the
    co-placement policy cannot thrash a thread between nodes."""

    def __post_init__(self) -> None:
        if self.trigger_threshold <= 0:
            raise ConfigurationError("trigger threshold must be positive")
        if self.sharing_threshold <= 0:
            raise ConfigurationError("sharing threshold must be positive")
        if self.sharing_threshold > self.trigger_threshold:
            raise ConfigurationError(
                "sharing threshold above trigger threshold can never fire"
            )
        if self.write_threshold < 0 or self.migrate_threshold < 0:
            raise ConfigurationError("thresholds must be non-negative")
        if self.reset_interval_ns <= 0:
            raise ConfigurationError("reset interval must be positive")
        if self.sampling_rate <= 0:
            raise ConfigurationError("sampling rate must be >= 1")
        if self.batch_pages <= 0:
            raise ConfigurationError("batch size must be positive")
        if self.pt_trigger_threshold <= 0:
            raise ConfigurationError("PT trigger threshold must be positive")
        if self.max_thread_migrations < 0:
            raise ConfigurationError(
                "max thread migrations must be non-negative"
            )
        if self.enable_thread_migration and not self.enable_pt_replication:
            raise ConfigurationError(
                "thread migration arbitrates against PT replication; "
                "enable_pt_replication must be set too"
            )

    # -- canonical policies ----------------------------------------------------

    @classmethod
    def base(cls, trigger_threshold: int = 128, **overrides) -> "PolicyParameters":
        """The base policy: sharing threshold is a quarter of trigger."""
        sharing = overrides.pop(
            "sharing_threshold", max(1, trigger_threshold // 4)
        )
        return cls(
            trigger_threshold=trigger_threshold,
            sharing_threshold=sharing,
            **overrides,
        )

    @classmethod
    def engineering_base(cls, **overrides) -> "PolicyParameters":
        """Base policy tuned for the engineering workload (trigger 96)."""
        return cls.base(trigger_threshold=96, **overrides)

    @classmethod
    def migration_only(cls, **overrides) -> "PolicyParameters":
        """The Migr policy of Figure 6."""
        overrides.setdefault("enable_replication", False)
        return cls.base(**overrides)

    @classmethod
    def replication_only(cls, **overrides) -> "PolicyParameters":
        """The Repl policy of Figure 6."""
        overrides.setdefault("enable_migration", False)
        return cls.base(**overrides)

    @classmethod
    def pt_replication(cls, **overrides) -> "PolicyParameters":
        """The PT-Repl policy: replicate page tables, leave data alone."""
        overrides.setdefault("enable_migration", False)
        overrides.setdefault("enable_replication", False)
        overrides.setdefault("enable_pt_replication", True)
        return cls.base(**overrides)

    @classmethod
    def co_placement(cls, **overrides) -> "PolicyParameters":
        """The CoPlace policy: data migration plus the PT/thread tie-break."""
        overrides.setdefault("enable_replication", False)
        overrides.setdefault("enable_pt_replication", True)
        overrides.setdefault("enable_thread_migration", True)
        return cls.base(**overrides)

    def replace(self, **changes) -> "PolicyParameters":
        """A copy with some fields changed."""
        return dataclasses.replace(self, **changes)

    def scaled_for_sampling(self, rate: int) -> "PolicyParameters":
        """Thresholds rescaled for 1-in-``rate`` sampled miss information.

        The thresholds approximate *rates* of real misses; counters fed
        1-in-N sampled misses hold 1/N of the real counts, so the
        comparison values shrink by the same factor.  This is what makes
        the paper's half-size counters (Section 7.2.1) sufficient under
        sampling, and what makes sampled-cache performance match
        full-cache performance (Section 8.3).
        """
        if rate <= 1:
            return self.replace(sampling_rate=1)
        return self.replace(
            sampling_rate=rate,
            trigger_threshold=max(1, self.trigger_threshold // rate),
            sharing_threshold=max(1, self.sharing_threshold // rate),
            write_threshold=max(1, self.write_threshold),
        )

    @property
    def is_static(self) -> bool:
        """True when neither migration nor replication can ever fire."""
        return not (self.enable_migration or self.enable_replication)

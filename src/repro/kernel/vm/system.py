"""The VM system facade: faults, migration, replication, collapse.

This module glues the hash table, page tables, allocator and locks into
the operations the pager performs (Figure 2 of the paper).  It implements
*mechanism only* — which pages to move is the policy's business — and it
keeps every invariant checkable:

* exactly one master frame per resident logical page, linked in the hash
  table, with replicas chained off it;
* every pte points at some copy of its logical page, and every frame's
  back-map lists exactly the ptes pointing at it;
* replicated pages are mapped read-only everywhere, so a store faults into
  the collapse path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.common.errors import AllocationError, VmError
from repro.kernel.vm.allocator import PageFrameAllocator
from repro.kernel.vm.hashtable import PageHashTable
from repro.kernel.vm.locks import LockRegistry
from repro.kernel.vm.page import PageFrame
from repro.kernel.vm.pagetable import PageTableDirectory, Pte


@dataclass
class VmStats:
    """Counters of VM-level events."""

    faults: int = 0
    migrations: int = 0
    replications: int = 0
    collapses: int = 0
    replicas_reclaimed: int = 0
    base_pages: int = 0           # distinct logical pages ever resident

    extra: Dict[str, int] = field(default_factory=dict)


class VmSystem:
    """Mechanism layer for page placement, movement and replication."""

    def __init__(
        self,
        n_nodes: int,
        frames_per_node: int,
        pressure_watermark: float = 0.04,
        locks: Optional[LockRegistry] = None,
    ) -> None:
        self.allocator = PageFrameAllocator(
            n_nodes, frames_per_node, pressure_watermark
        )
        self.hash_table = PageHashTable()
        self.page_tables = PageTableDirectory()
        self.locks = locks or LockRegistry()
        self.stats = VmStats()

    # -- lookups -----------------------------------------------------------------

    def master_of(self, page: int) -> Optional[PageFrame]:
        """Resident master frame for a logical page, or None."""
        return self.hash_table.lookup(page)

    def frame_for(self, process: int, page: int) -> Optional[PageFrame]:
        """The frame ``process``'s mapping of ``page`` points at."""
        pte = self.page_tables.table(process).lookup(page)
        return pte.frame if pte is not None else None

    def location_for(self, process: int, page: int) -> Optional[int]:
        """Node the process's copy of the page lives on (None if unmapped)."""
        frame = self.frame_for(process, page)
        return frame.node if frame is not None else None

    # -- page faults ----------------------------------------------------------------

    def fault(
        self,
        process: int,
        page: int,
        node: int,
        writable: bool = True,
        region_id: int = 0,
    ) -> Pte:
        """Handle a (first-touch style) fault: make ``page`` mapped.

        If the page is resident the process is mapped to the copy nearest
        ``node``; otherwise a master frame is allocated on ``node``
        (falling back to other nodes when full, as IRIX would).
        """
        table = self.page_tables.table(process)
        existing = table.lookup(page)
        if existing is not None:
            return existing
        self.stats.faults += 1
        master = self.hash_table.lookup(page)
        if master is None:
            try:
                frame = self.allocator.allocate_fallback(node, page)
            except AllocationError:
                # Memory pressure: the pageout daemon preferentially
                # reclaims replicated pages (Section 7.2.3) so base pages
                # always fit.
                self._reclaim_anywhere(want=1, preferred=node)
                frame = self.allocator.allocate_fallback(node, page)
            self.hash_table.insert(frame)
            self.stats.base_pages += 1
            return table.map(page, frame, writable=writable, region_id=region_id)
        copy = master.nearest_copy(node)
        # Mappings to a replicated page are read-only (Section 4).
        effective_writable = writable and not master.has_replicas
        return table.map(
            page, copy, writable=effective_writable, region_id=region_id
        )

    # -- migration -------------------------------------------------------------------

    def migrate(self, page: int, to_node: int) -> PageFrame:
        """Move the (unreplicated) master of ``page`` to ``to_node``.

        Raises :class:`AllocationError` when ``to_node`` has no free frame
        and no reclaimable replicas, and :class:`VmError` when called on a
        replicated page (policy never migrates those).
        """
        old = self.hash_table.lookup(page)
        if old is None:
            raise VmError(f"page {page} is not resident")
        if old.has_replicas:
            raise VmError("cannot migrate a replicated page; collapse first")
        if old.node == to_node:
            raise VmError("page already lives on the target node")
        # A full target node fails the operation (Table 4's "no page");
        # replica reclaim is the pageout daemon's job, not the pager's.
        new = self.allocator.allocate(to_node, page)
        self.hash_table.replace_master(old, new)
        for pte in list(old.ptes):
            pte.remap(new)
        self.allocator.free(old)
        self.stats.migrations += 1
        return new

    # -- replication ------------------------------------------------------------------

    def replicate(
        self,
        page: int,
        to_node: int,
        node_of_process: Callable[[int], int],
    ) -> PageFrame:
        """Create a replica of ``page`` on ``to_node``.

        After chaining the replica, *every* pte of the logical page is
        re-pointed to the copy nearest its process's current node and
        marked read-only (the paper's step 8: mappings updated to the
        closest replica; writes must trap so replicas can be collapsed).
        """
        master = self.hash_table.lookup(page)
        if master is None:
            raise VmError(f"page {page} is not resident")
        if to_node in master.copy_nodes():
            raise VmError(f"page {page} already has a copy on node {to_node}")
        replica = self.allocator.allocate(to_node, page)
        # ``allocate`` assigned it as a master; rewind that and chain it.
        replica.logical_page = None
        master.add_replica(replica)
        self.allocator.note_replica_created(to_node)
        self._repoint_to_nearest(master, node_of_process, writable=False)
        self.stats.replications += 1
        return replica

    # -- collapse ----------------------------------------------------------------------

    def collapse(
        self,
        page: int,
        keep_node: Optional[int] = None,
    ) -> PageFrame:
        """Collapse all replicas of ``page`` to a single copy.

        Keeps the copy on ``keep_node`` when one exists (the writer's
        node), else the master.  All ptes are re-pointed at the survivor
        and made writable again.
        """
        master = self.hash_table.lookup(page)
        if master is None:
            raise VmError(f"page {page} is not resident")
        if not master.has_replicas:
            raise VmError(f"page {page} has no replicas to collapse")
        survivor = master.nearest_copy(keep_node) if keep_node is not None else master
        # Re-point every mapping at the survivor and restore writability.
        for copy in master.all_copies():
            for pte in list(copy.ptes):
                if pte.frame is not survivor:
                    pte.remap(survivor)
                pte.writable = True
        # If the survivor is a replica it becomes the new master.
        if survivor is not master:
            master.remove_replica(survivor)
            survivor.assign(page)
            # Move remaining replicas (if any) onto the new master — the
            # collapse frees them all below, but links must stay coherent.
            for replica in list(master.replicas):
                master.remove_replica(replica)
                self.allocator.note_replica_destroyed(replica.node)
                self.allocator.free(replica)
            self.hash_table.replace_master(master, survivor)
            self.allocator.note_replica_destroyed(survivor.node)
            # Old master frame is now unmapped and unchained.
            self.allocator.free(master)
        else:
            for replica in list(master.replicas):
                master.remove_replica(replica)
                self.allocator.note_replica_destroyed(replica.node)
                self.allocator.free(replica)
        self.stats.collapses += 1
        return survivor

    # -- pressure-driven reclaim ----------------------------------------------------------

    def reclaim_replicas(self, node: int, want: int) -> int:
        """Free up to ``want`` replica frames on ``node``.

        Mappings pointing at a reclaimed replica are re-pointed to the
        master.  Returns the number of frames actually reclaimed.
        """
        reclaimed = 0
        if want <= 0:
            return 0
        for master in list(self.hash_table):
            if reclaimed >= want:
                break
            for replica in list(master.replicas):
                if replica.node != node:
                    continue
                for pte in list(replica.ptes):
                    pte.remap(master)
                master.remove_replica(replica)
                self.allocator.note_replica_destroyed(node)
                self.allocator.free(replica)
                reclaimed += 1
                if not master.has_replicas:
                    for pte in master.ptes:
                        pte.writable = True
                if reclaimed >= want:
                    break
        self.stats.replicas_reclaimed += reclaimed
        return reclaimed

    # -- helpers --------------------------------------------------------------------------

    def _reclaim_anywhere(self, want: int, preferred: int) -> int:
        """Reclaim replicas, preferring the ``preferred`` node's memory."""
        reclaimed = self.reclaim_replicas(preferred, want)
        if reclaimed >= want:
            return reclaimed
        for node in range(self.allocator.n_nodes):
            if node == preferred:
                continue
            reclaimed += self.reclaim_replicas(node, want - reclaimed)
            if reclaimed >= want:
                break
        return reclaimed

    def _repoint_to_nearest(
        self,
        master: PageFrame,
        node_of_process: Callable[[int], int],
        writable: bool,
    ) -> None:
        """Point every pte of the page at the copy nearest its process."""
        for copy in master.all_copies():
            for pte in list(copy.ptes):
                nearest = master.nearest_copy(node_of_process(pte.process))
                if pte.frame is not nearest:
                    pte.remap(nearest)
                pte.writable = writable

    # -- invariants (used by tests and property checks) ------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`VmError` if any VM invariant is violated."""
        for master in self.hash_table:
            if not master.is_master:
                raise VmError(f"hash table holds non-master {master!r}")
            nodes = master.copy_nodes()
            if len(nodes) != len(set(nodes)):
                raise VmError(
                    f"page {master.logical_page} has two copies on one node"
                )
            for copy in master.all_copies():
                for pte in copy.ptes:
                    if pte.logical_page != master.logical_page:
                        raise VmError("back-map points at a foreign pte")
                    if pte.frame is not copy:
                        raise VmError("back-map / pte frame mismatch")
                    if master.has_replicas and pte.writable:
                        raise VmError(
                            f"writable mapping to replicated page "
                            f"{master.logical_page}"
                        )

    def memory_usage_pages(self) -> int:
        """Frames in use machine-wide."""
        return self.allocator.frames_in_use()

    def replication_overhead(self) -> float:
        """Peak replica frames as a fraction of distinct base pages."""
        if self.stats.base_pages == 0:
            return 0.0
        return self.allocator.peak_replica_frames / self.stats.base_pages

"""Per-process page tables, ptes and pfd back-mappings.

Mirrors the mapping machinery of Section 4: page table entries point at
pfds; the paper adds (i) back-mappings from each pfd to the ptes mapping
it, and (ii) a lock on each pte so mappings can change without holding the
coarse region lock.  Replicated pages are mapped read-only so a store
traps into the collapse path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import VmError
from repro.kernel.vm.page import PageFrame


class Pte:
    """One page-table entry: (process, logical page) -> frame."""

    __slots__ = ("process", "logical_page", "frame", "writable", "region_id")

    def __init__(
        self,
        process: int,
        logical_page: int,
        frame: PageFrame,
        writable: bool = True,
        region_id: int = 0,
    ) -> None:
        self.process = process
        self.logical_page = logical_page
        self.frame = frame
        self.writable = writable
        self.region_id = region_id

    def remap(self, new_frame: PageFrame) -> None:
        """Point this pte at a different frame, fixing back-mappings."""
        if new_frame.logical_page != self.logical_page:
            raise VmError("cannot remap a pte to a different logical page")
        self.frame.detach_pte(self)
        self.frame = new_frame
        new_frame.attach_pte(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Pte(proc={self.process}, page={self.logical_page}, "
            f"frame={self.frame.frame_id}, w={self.writable})"
        )


class PageTable:
    """One process's page table."""

    def __init__(self, process: int) -> None:
        self.process = process
        self._entries: Dict[int, Pte] = {}

    def map(
        self,
        logical_page: int,
        frame: PageFrame,
        writable: bool = True,
        region_id: int = 0,
    ) -> Pte:
        """Install a mapping and register the back-mapping."""
        if logical_page in self._entries:
            raise VmError(
                f"process {self.process} already maps page {logical_page}"
            )
        pte = Pte(self.process, logical_page, frame, writable, region_id)
        self._entries[logical_page] = pte
        frame.attach_pte(pte)
        return pte

    def lookup(self, logical_page: int) -> Optional[Pte]:
        """The pte for ``logical_page``, or None when unmapped."""
        return self._entries.get(logical_page)

    def unmap(self, logical_page: int) -> Pte:
        """Remove a mapping and its back-mapping."""
        pte = self._entries.pop(logical_page, None)
        if pte is None:
            raise VmError(
                f"process {self.process} does not map page {logical_page}"
            )
        pte.frame.detach_pte(pte)
        return pte

    def unmap_all(self) -> int:
        """Tear down every mapping (process exit); returns count removed."""
        count = 0
        for logical_page in list(self._entries):
            self.unmap(logical_page)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Pte]:
        return iter(self._entries.values())


class PageTableDirectory:
    """All processes' page tables, created on demand."""

    def __init__(self) -> None:
        self._tables: Dict[int, PageTable] = {}

    def table(self, process: int) -> PageTable:
        """Page table for ``process`` (created if absent)."""
        table = self._tables.get(process)
        if table is None:
            table = self._tables[process] = PageTable(process)
        return table

    def drop(self, process: int) -> int:
        """Destroy a process's table; returns mappings removed."""
        table = self._tables.pop(process, None)
        return table.unmap_all() if table is not None else 0

    def processes(self) -> List[int]:
        """Processes with live page tables."""
        return sorted(self._tables)

    def mappings_of_frame(self, frame: PageFrame) -> List[Pte]:
        """All ptes mapping ``frame`` (straight off the back-mappings)."""
        return list(frame.ptes)

    def __len__(self) -> int:
        return len(self._tables)

"""The IRIX-like virtual memory substrate."""

from repro.kernel.vm.allocator import PageFrameAllocator
from repro.kernel.vm.hashtable import PageHashTable, logical_id, vnode_offset
from repro.kernel.vm.locks import LockRegistry, SimLock
from repro.kernel.vm.page import PageFrame
from repro.kernel.vm.pagetable import PageTable, PageTableDirectory, Pte
from repro.kernel.vm.shootdown import ShootdownMode, plan_flush
from repro.kernel.vm.system import VmStats, VmSystem

__all__ = [
    "PageFrameAllocator",
    "PageHashTable",
    "logical_id",
    "vnode_offset",
    "LockRegistry",
    "SimLock",
    "PageFrame",
    "PageTable",
    "PageTableDirectory",
    "Pte",
    "ShootdownMode",
    "plan_flush",
    "VmStats",
    "VmSystem",
]

"""Simulated kernel locks with contention accounting.

Section 4 of the paper identifies IRIX's coarse VM locking — one global
``memlock`` protecting the physical-page hash table and free lists, plus
one lock per memory region — as a performance bottleneck for page
movement, and describes adding page-level and pte-level locks.  Table 5's
workload-to-workload latency differences (engineering's 184 µs page
allocation versus raytrace's 74 µs) come from memlock contention.

:class:`SimLock` models a lock in *virtual time*: each acquisition declares
how long the holder will keep it, and a later acquisition that lands while
the lock is still held waits until it frees.  Wait time is charged to the
acquiring operation's cost category, so lock contention shows up exactly
where the paper saw it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigurationError
from repro.common.stats import OnlineStats


@dataclass
class LockAcquisition:
    """Result of one acquisition: the wait incurred and the release time."""

    wait_ns: float
    release_ns: float


class SimLock:
    """A virtual-time mutex with hold/wait statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._free_at = 0.0
        self.acquisitions = 0
        self.contended = 0
        self.wait = OnlineStats()
        self.hold = OnlineStats()

    def acquire(self, now: float, hold_ns: float) -> LockAcquisition:
        """Acquire at virtual time ``now``, holding for ``hold_ns``.

        Returns the wait the acquirer suffered; the lock frees at
        ``max(now, free_at) + hold_ns``.
        """
        if hold_ns < 0:
            raise ConfigurationError("hold time must be non-negative")
        wait = max(0.0, self._free_at - now)
        if wait > 0:
            self.contended += 1
        start = now + wait
        self._free_at = start + hold_ns
        self.acquisitions += 1
        self.wait.add(wait)
        self.hold.add(hold_ns)
        return LockAcquisition(wait_ns=wait, release_ns=self._free_at)

    @property
    def contention_rate(self) -> float:
        """Fraction of acquisitions that had to wait."""
        return self.contended / self.acquisitions if self.acquisitions else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimLock({self.name!r}, acq={self.acquisitions}, "
            f"contended={self.contended})"
        )


class LockRegistry:
    """The kernel's lock namespace.

    ``memlock`` is the single global lock; region locks and page locks are
    created on demand.  Keeping them in one registry lets the results code
    report contention per lock class.
    """

    def __init__(self) -> None:
        self.memlock = SimLock("memlock")
        self._region_locks: Dict[int, SimLock] = {}
        self._page_locks: Dict[int, SimLock] = {}

    def region_lock(self, region_id: int) -> SimLock:
        """Per-region lock (shared text or data region)."""
        lock = self._region_locks.get(region_id)
        if lock is None:
            lock = self._region_locks[region_id] = SimLock(f"region:{region_id}")
        return lock

    def page_lock(self, logical_page: int) -> SimLock:
        """Page-level lock added by the paper for replica-chain updates."""
        lock = self._page_locks.get(logical_page)
        if lock is None:
            lock = self._page_locks[logical_page] = SimLock(
                f"page:{logical_page}"
            )
        return lock

    def total_wait_ns(self) -> float:
        """Total virtual time spent waiting on all locks."""
        total = self.memlock.wait.total
        total += sum(l.wait.total for l in self._region_locks.values())
        total += sum(l.wait.total for l in self._page_locks.values())
        return total

    def register_metrics(self, registry) -> None:
        """Expose lock contention under ``kernel.locks``.

        memlock (the paper's bottleneck) gets full wait/hold histograms
        by reference; the dynamically created page/region locks are
        summarised through collect-time callbacks so taking a lock stays
        exactly as cheap as before.
        """
        registry.register_callback(
            "kernel.locks.memlock.acquisitions",
            lambda: self.memlock.acquisitions,
        )
        registry.register_callback(
            "kernel.locks.memlock.contended", lambda: self.memlock.contended
        )
        registry.histogram("kernel.locks.memlock.wait_ns", self.memlock.wait)
        registry.histogram("kernel.locks.memlock.hold_ns", self.memlock.hold)
        registry.register_callback(
            "kernel.locks.page_locks", lambda: len(self._page_locks)
        )
        registry.register_callback(
            "kernel.locks.page_lock_wait_ns",
            lambda: sum(l.wait.total for l in self._page_locks.values()),
        )
        registry.register_callback(
            "kernel.locks.region_lock_wait_ns",
            lambda: sum(l.wait.total for l in self._region_locks.values()),
        )
        registry.register_callback(
            "kernel.locks.total_wait_ns", self.total_wait_ns
        )

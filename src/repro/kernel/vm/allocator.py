"""Per-node page-frame allocation, memory pressure, replica accounting.

The pager allocates the destination frame for a migration or replication
from the memory of a specific node; when that node's free list is empty
the operation fails — the "% No Page" column of Table 4 (24 % for the
splash workload, whose per-node memory runs out even though the machine as
a whole has room).

The allocator also implements the paper's memory-pressure response
(Section 7.2.3): below a free-frame watermark a node is "under pressure",
which the decision tree consults before allowing replication, and
replicated frames are preferentially reclaimable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import AllocationError, ConfigurationError
from repro.kernel.vm.page import PageFrame


class PageFrameAllocator:
    """Free lists of :class:`PageFrame` per NUMA node."""

    def __init__(
        self,
        n_nodes: int,
        frames_per_node: int,
        pressure_watermark: float = 0.04,
    ) -> None:
        if n_nodes <= 0 or frames_per_node <= 0:
            raise ConfigurationError("need positive node and frame counts")
        if not 0.0 <= pressure_watermark < 1.0:
            raise ConfigurationError("watermark must lie in [0, 1)")
        self.n_nodes = n_nodes
        self.frames_per_node = frames_per_node
        self.pressure_watermark = pressure_watermark
        self._free: List[List[PageFrame]] = []
        self._in_use: List[int] = [0] * n_nodes
        next_id = 0
        for node in range(n_nodes):
            frames = [
                PageFrame(next_id + i, node) for i in range(frames_per_node)
            ]
            next_id += frames_per_node
            # Pop from the end; reversing keeps allocation order ascending.
            frames.reverse()
            self._free.append(frames)
        # statistics
        self.allocations = 0
        self.failures = 0
        self.peak_in_use = 0
        self.replica_frames: Dict[int, int] = {n: 0 for n in range(n_nodes)}
        self.peak_replica_frames = 0

    # -- capacity queries ---------------------------------------------------

    def free_frames(self, node: int) -> int:
        """Free frames on ``node``."""
        return len(self._free[node])

    def frames_in_use(self, node: Optional[int] = None) -> int:
        """Frames in use on ``node`` (or machine-wide when None)."""
        if node is None:
            return sum(self._in_use)
        return self._in_use[node]

    def under_pressure(self, node: int) -> bool:
        """True when the node's free fraction is below the watermark."""
        return self.free_frames(node) < self.frames_per_node * self.pressure_watermark

    # -- allocation -------------------------------------------------------------

    def allocate(self, node: int, logical_page: int) -> PageFrame:
        """Allocate a frame on exactly ``node`` for ``logical_page``.

        Raises :class:`AllocationError` when the node is out of frames —
        the Table 4 "no page" outcome.
        """
        free = self._free[node]
        if not free:
            self.failures += 1
            raise AllocationError(node)
        frame = free.pop()
        frame.assign(logical_page)
        self._in_use[node] += 1
        self.allocations += 1
        self.peak_in_use = max(self.peak_in_use, self.frames_in_use())
        return frame

    def allocate_fallback(self, preferred: int, logical_page: int) -> PageFrame:
        """Allocate on ``preferred``, falling back round-robin to others.

        Used for first-touch page faults: IRIX would not fail the fault
        just because the local node is full.
        """
        for delta in range(self.n_nodes):
            node = (preferred + delta) % self.n_nodes
            try:
                return self.allocate(node, logical_page)
            except AllocationError:
                continue
        raise AllocationError(preferred, "machine out of memory")

    def free(self, frame: PageFrame) -> None:
        """Return ``frame`` to its node's free list."""
        if frame.is_replica or frame.logical_page is not None:
            # ``release`` validates there are no live links.
            frame.release()
        self._free[frame.node].append(frame)
        self._in_use[frame.node] -= 1

    # -- replica accounting -------------------------------------------------------

    def note_replica_created(self, node: int) -> None:
        """Track a replica frame for pressure-driven reclaim statistics."""
        self.replica_frames[node] += 1
        self.peak_replica_frames = max(
            self.peak_replica_frames, sum(self.replica_frames.values())
        )

    def note_replica_destroyed(self, node: int) -> None:
        """A replica frame on ``node`` was collapsed or reclaimed."""
        if self.replica_frames[node] <= 0:
            raise AllocationError(node, "replica count underflow")
        self.replica_frames[node] -= 1

    def total_replica_frames(self) -> int:
        """Live replica frames machine-wide."""
        return sum(self.replica_frames.values())

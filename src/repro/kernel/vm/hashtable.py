"""The (vnode, offset) -> physical page open hash table.

IRIX translates logical pages to physical frames through a global open
hash table of pfds protected by ``memlock``; the paper's replication
support links replicas off the master pfd so that exactly one frame per
logical page is in the table (Section 4, "Replication support").

Logical pages are identified by a single integer id throughout the
library; :func:`logical_id` and :func:`vnode_offset` convert between that
id and the (vnode, offset) pair IRIX would use, so the bucket structure is
faithful while the rest of the system stays simple.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import VmError
from repro.kernel.vm.page import PageFrame

_OFFSET_BITS = 20  # 2^20 pages (4 GB) per vnode


def logical_id(vnode: int, offset: int) -> int:
    """Pack a (vnode, page offset) pair into a logical page id."""
    if vnode < 0 or offset < 0:
        raise VmError("vnode and offset must be non-negative")
    if offset >= (1 << _OFFSET_BITS):
        raise VmError("offset too large")
    return (vnode << _OFFSET_BITS) | offset


def vnode_offset(page_id: int) -> Tuple[int, int]:
    """Unpack a logical page id into its (vnode, page offset) pair."""
    if page_id < 0:
        raise VmError("page id must be non-negative")
    return page_id >> _OFFSET_BITS, page_id & ((1 << _OFFSET_BITS) - 1)


class PageHashTable:
    """Open hash of master pfds keyed by logical page id."""

    def __init__(self, n_buckets: int = 4096) -> None:
        if n_buckets <= 0:
            raise VmError("need at least one bucket")
        self._n_buckets = n_buckets
        self._buckets: List[Dict[int, PageFrame]] = [
            {} for _ in range(n_buckets)
        ]
        self._count = 0

    def _bucket(self, page_id: int) -> Dict[int, PageFrame]:
        return self._buckets[page_id % self._n_buckets]

    def insert(self, frame: PageFrame) -> None:
        """Link a master frame into the table (memlock held by caller)."""
        if not frame.is_master:
            raise VmError("only master frames live in the hash table")
        bucket = self._bucket(frame.logical_page)
        if frame.logical_page in bucket:
            raise VmError(
                f"logical page {frame.logical_page} already present"
            )
        bucket[frame.logical_page] = frame
        self._count += 1

    def lookup(self, page_id: int) -> Optional[PageFrame]:
        """Master frame for ``page_id``, or None if not resident."""
        return self._bucket(page_id).get(page_id)

    def remove(self, page_id: int) -> PageFrame:
        """Unlink and return the master frame for ``page_id``."""
        bucket = self._bucket(page_id)
        frame = bucket.pop(page_id, None)
        if frame is None:
            raise VmError(f"logical page {page_id} is not resident")
        self._count -= 1
        return frame

    def replace_master(self, old: PageFrame, new: PageFrame) -> None:
        """Swap the table entry from ``old`` to ``new`` (migration step).

        The caller has already assigned ``new`` to the same logical page.
        """
        if old.logical_page != new.logical_page:
            raise VmError("replacement must be for the same logical page")
        bucket = self._bucket(old.logical_page)
        if bucket.get(old.logical_page) is not old:
            raise VmError("old frame is not the current master")
        bucket[old.logical_page] = new

    def __contains__(self, page_id: int) -> bool:
        return self.lookup(page_id) is not None

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[PageFrame]:
        for bucket in self._buckets:
            yield from bucket.values()

    def longest_chain(self) -> int:
        """Longest bucket chain (a health metric for the open hash)."""
        return max((len(b) for b in self._buckets), default=0)

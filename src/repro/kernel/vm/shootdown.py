"""TLB shootdown planning.

Table 6 shows TLB flushing is the single largest kernel overhead of page
movement (34–54 %), because IRIX keeps no record of which processors hold
a mapping and must therefore flush *every* TLB.  The paper simulates a
"tracked mappings" capability that flushes only processors with live
mappings and finds it cuts total kernel overhead by ~25 % (on average two
TLBs flushed instead of eight).

:func:`plan_flush` computes the CPU set to flush for a batch of frames
under either mode, using the pfd back-mappings; the cost model charges per
CPU flushed, so the published effect reproduces mechanically.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.kernel.vm.page import PageFrame
from repro.obs.events import ShootdownEvent
from repro.obs.tracer import as_tracer


class ShootdownMode(enum.Enum):
    """How the kernel picks the processors whose TLBs to flush."""

    ALL_CPUS = "all"          # stock IRIX: no mapping information
    TRACKED = "tracked"       # simulated: flush only CPUs with mappings


def plan_flush(
    frames: Iterable[PageFrame],
    mode: ShootdownMode,
    n_cpus: int,
    cpu_of_process: Callable[[int], Optional[int]],
) -> List[int]:
    """CPUs whose TLBs must be flushed for a batch of page operations.

    ``cpu_of_process`` maps a process id to the CPU it currently runs on
    (None when not running — a descheduled process needs no flush; its
    stale TLB context is gone by the time it runs again).
    """
    if mode is ShootdownMode.ALL_CPUS:
        return list(range(n_cpus))
    cpus: Set[int] = set()
    for frame in frames:
        start = frame if not frame.is_replica else frame.master
        copies = start.all_copies() if start is not None else [frame]
        for copy in copies:
            for pte in copy.ptes:
                cpu = cpu_of_process(pte.process)
                if cpu is not None:
                    cpus.add(cpu)
    return sorted(cpus)


class ShootdownPlanner:
    """Plans flush rounds and keeps the flush statistics in one place.

    The pager and the collapse handler used to each reimplement the
    "how many TLBs does this round flush" arithmetic; the planner owns
    it, counts flush rounds and TLBs flushed, and (when a tracer is
    attached) emits one :class:`~repro.obs.events.ShootdownEvent` per
    round.
    """

    def __init__(
        self,
        mode: ShootdownMode,
        n_cpus: int,
        cpu_of_process: Callable[[int], Optional[int]],
        tracer=None,
        flush_base_ns: float = 0.0,
        flush_per_cpu_ns: float = 0.0,
    ) -> None:
        self.mode = mode
        self.n_cpus = n_cpus
        self.cpu_of_process = cpu_of_process
        self.tracer = as_tracer(tracer)
        self.flush_base_ns = flush_base_ns
        self.flush_per_cpu_ns = flush_per_cpu_ns
        self.tlbs_flushed = 0
        self.flush_operations = 0

    def flush(
        self,
        now_ns: int,
        frames: Sequence[PageFrame],
        origin_cpu: int = -1,
    ) -> int:
        """Execute one flush round for ``frames``; returns TLBs flushed.

        Under ALL_CPUS every TLB flushes regardless of mappings; under
        TRACKED only CPUs with live mappings do (minimum one — the
        handler's own CPU always takes the flush IPI path).
        """
        cpus = plan_flush(frames, self.mode, self.n_cpus, self.cpu_of_process)
        if self.mode is ShootdownMode.ALL_CPUS:
            flushed = self.n_cpus
        else:
            flushed = max(len(cpus), 1)
        self.tlbs_flushed += flushed
        self.flush_operations += 1
        if self.tracer.active:
            self.tracer.emit(
                ShootdownEvent(
                    t=now_ns,
                    origin_cpu=origin_cpu,
                    mode=self.mode.value,
                    cpus_flushed=flushed,
                    frames=len(frames),
                    cost_ns=self.flush_base_ns
                    + self.flush_per_cpu_ns * flushed,
                )
            )
        return flushed

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose flush-round statistics under ``prefix``."""
        registry.register_callback(
            f"{prefix}.tlbs_flushed", lambda: self.tlbs_flushed
        )
        registry.register_callback(
            f"{prefix}.flush_operations", lambda: self.flush_operations
        )

"""TLB shootdown planning.

Table 6 shows TLB flushing is the single largest kernel overhead of page
movement (34–54 %), because IRIX keeps no record of which processors hold
a mapping and must therefore flush *every* TLB.  The paper simulates a
"tracked mappings" capability that flushes only processors with live
mappings and finds it cuts total kernel overhead by ~25 % (on average two
TLBs flushed instead of eight).

:func:`plan_flush` computes the CPU set to flush for a batch of frames
under either mode, using the pfd back-mappings; the cost model charges per
CPU flushed, so the published effect reproduces mechanically.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, List, Optional, Set

from repro.kernel.vm.page import PageFrame


class ShootdownMode(enum.Enum):
    """How the kernel picks the processors whose TLBs to flush."""

    ALL_CPUS = "all"          # stock IRIX: no mapping information
    TRACKED = "tracked"       # simulated: flush only CPUs with mappings


def plan_flush(
    frames: Iterable[PageFrame],
    mode: ShootdownMode,
    n_cpus: int,
    cpu_of_process: Callable[[int], Optional[int]],
) -> List[int]:
    """CPUs whose TLBs must be flushed for a batch of page operations.

    ``cpu_of_process`` maps a process id to the CPU it currently runs on
    (None when not running — a descheduled process needs no flush; its
    stale TLB context is gone by the time it runs again).
    """
    if mode is ShootdownMode.ALL_CPUS:
        return list(range(n_cpus))
    cpus: Set[int] = set()
    for frame in frames:
        start = frame if not frame.is_replica else frame.master
        copies = start.all_copies() if start is not None else [frame]
        for copy in copies:
            for pte in copy.ptes:
                cpu = cpu_of_process(pte.process)
                if cpu is not None:
                    cpus.add(cpu)
    return sorted(cpus)

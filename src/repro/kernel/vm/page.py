"""Page frame descriptors and replica chains.

Mirrors the structures Section 4 describes: IRIX's ``pfd`` (physical page
frame descriptor), the replica chains added for replication support
(replicas linked together, with one *master* linked into the page hash
table), and the back-mappings from a pfd to every pte that maps it (an
inverted-page-table-like addition that makes mapping changes cheap).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.common.errors import VmError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.kernel.vm.pagetable import Pte


class PageFrame:
    """One physical page frame (a pfd).

    A frame is either free (``logical_page is None``), a *master* copy of a
    logical page, or a *replica* chained off a master.
    """

    __slots__ = (
        "frame_id",
        "node",
        "logical_page",
        "is_replica",
        "master",
        "replicas",
        "ptes",
        "locked",
    )

    def __init__(self, frame_id: int, node: int) -> None:
        self.frame_id = frame_id
        self.node = node
        self.logical_page: Optional[int] = None
        self.is_replica = False
        self.master: Optional["PageFrame"] = None
        self.replicas: List["PageFrame"] = []
        self.ptes: List["Pte"] = []   # back-mappings (Section 4)
        self.locked = False           # transient, during migration/replication

    # -- state predicates -----------------------------------------------------

    @property
    def is_free(self) -> bool:
        """True when the frame holds no logical page."""
        return self.logical_page is None

    @property
    def is_master(self) -> bool:
        """True for the chain head of an in-use logical page."""
        return self.logical_page is not None and not self.is_replica

    @property
    def has_replicas(self) -> bool:
        """True when this master has at least one replica."""
        return bool(self.replicas)

    # -- lifecycle --------------------------------------------------------------

    def assign(self, logical_page: int) -> None:
        """Bind a free frame to a logical page as a master copy."""
        if not self.is_free:
            raise VmError(f"frame {self.frame_id} is already in use")
        self.logical_page = logical_page
        self.is_replica = False
        self.master = None

    def release(self) -> None:
        """Return the frame to the free state."""
        if self.ptes:
            raise VmError(
                f"frame {self.frame_id} still mapped by {len(self.ptes)} pte(s)"
            )
        if self.replicas:
            raise VmError(f"frame {self.frame_id} still has replicas")
        if self.master is not None:
            raise VmError(f"frame {self.frame_id} is still chained to a master")
        self.logical_page = None
        self.is_replica = False
        self.locked = False

    # -- replica chain ----------------------------------------------------------

    def add_replica(self, replica: "PageFrame") -> None:
        """Chain ``replica`` (a free frame) onto this master."""
        if not self.is_master:
            raise VmError("replicas chain only onto a master frame")
        if not replica.is_free:
            raise VmError(f"frame {replica.frame_id} is not free")
        if any(r.node == replica.node for r in self.replicas) or (
            replica.node == self.node
        ):
            raise VmError(
                f"logical page {self.logical_page} already has a copy on "
                f"node {replica.node}"
            )
        replica.logical_page = self.logical_page
        replica.is_replica = True
        replica.master = self
        self.replicas.append(replica)

    def remove_replica(self, replica: "PageFrame") -> None:
        """Unchain ``replica``; the caller frees it afterwards."""
        if replica not in self.replicas:
            raise VmError(
                f"frame {replica.frame_id} is not a replica of "
                f"frame {self.frame_id}"
            )
        self.replicas.remove(replica)
        replica.master = None
        replica.is_replica = False
        replica.logical_page = None

    def all_copies(self) -> List["PageFrame"]:
        """Master first, then replicas."""
        if self.is_replica:
            raise VmError("all_copies must be called on the master")
        return [self] + list(self.replicas)

    def copy_nodes(self) -> List[int]:
        """Nodes holding a copy of this logical page (master first)."""
        return [frame.node for frame in self.all_copies()]

    def nearest_copy(self, node: int) -> "PageFrame":
        """The copy on ``node`` if one exists, else the master."""
        for frame in self.all_copies():
            if frame.node == node:
                return frame
        return self

    # -- back mappings ------------------------------------------------------------

    def attach_pte(self, pte: "Pte") -> None:
        """Record that ``pte`` maps this frame."""
        self.ptes.append(pte)

    def detach_pte(self, pte: "Pte") -> None:
        """Remove a back-mapping."""
        try:
            self.ptes.remove(pte)
        except ValueError:
            raise VmError("pte is not attached to this frame") from None

    def mapping_cpus(self, cpu_of_process) -> List[int]:
        """CPUs that currently have a mapping to this frame.

        Used by the tracked-TLB-flush optimisation the paper simulates in
        Section 7.2.2 (flush only processors holding mappings).
        """
        cpus = {cpu_of_process(pte.process) for pte in self.ptes}
        return sorted(c for c in cpus if c is not None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "free" if self.is_free else ("replica" if self.is_replica else "master")
        return (
            f"PageFrame(id={self.frame_id}, node={self.node}, {kind}, "
            f"page={self.logical_page})"
        )

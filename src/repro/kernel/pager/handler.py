"""The pager interrupt handler: Figure 2 of the paper, executed for real.

The directory controller delivers a batch of hot pages; the handler walks
the numbered steps — read counters and decide (3), allocate (4), link and
map (5), one TLB flush for the whole batch (6), copy (7), free and
re-point mappings (8) — against the live VM data structures, charging each
step's cost (base latency plus simulated lock waits) to the matching
Table 5/6 category.

Outcomes per hot page are exactly Table 4's taxonomy: migrated,
replicated, no action, or "no page" when the target node's memory is
exhausted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import AllocationError
from repro.kernel.pager.costs import (
    CostCategory,
    KernelCostAccounting,
    KernelCostModel,
    OpType,
)
from repro.kernel.vm.page import PageFrame
from repro.kernel.vm.shootdown import ShootdownMode, ShootdownPlanner
from repro.kernel.vm.system import VmSystem
from repro.obs.events import (
    MigrationDecision,
    NoActionDecision,
    ReplicationDecision,
)
from repro.obs.tracer import as_tracer
from repro.machine.directory import DirectoryArray, HotBatch
from repro.policy.decision import Action, Decision, Reason, decide
from repro.policy.parameters import PolicyParameters


class Outcome(enum.Enum):
    """Table 4's per-hot-page outcomes."""

    MIGRATED = "migrate"
    REPLICATED = "replicate"
    NO_ACTION = "no action"
    NO_PAGE = "no page"


@dataclass
class PageActionResult:
    """What happened to one hot page."""

    page: int
    cpu: int
    outcome: Outcome
    reason: Optional[Reason] = None


@dataclass
class ActionTally:
    """Running Table 4 counts, plus a per-page outcome ledger."""

    hot_pages: int = 0
    migrated: int = 0
    replicated: int = 0
    no_action: int = 0
    no_page: int = 0
    reasons: Dict[Reason, int] = field(default_factory=dict)
    by_page: Dict[int, Dict[Outcome, int]] = field(default_factory=dict)

    def add(self, result: PageActionResult) -> None:
        """Fold one outcome into the tally."""
        self.hot_pages += 1
        if result.outcome is Outcome.MIGRATED:
            self.migrated += 1
        elif result.outcome is Outcome.REPLICATED:
            self.replicated += 1
        elif result.outcome is Outcome.NO_PAGE:
            self.no_page += 1
        else:
            self.no_action += 1
        if result.reason is not None:
            self.reasons[result.reason] = self.reasons.get(result.reason, 0) + 1
        page_counts = self.by_page.setdefault(result.page, {})
        page_counts[result.outcome] = page_counts.get(result.outcome, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (enum keys become their string values)."""
        return {
            "hot_pages": self.hot_pages,
            "migrated": self.migrated,
            "replicated": self.replicated,
            "no_action": self.no_action,
            "no_page": self.no_page,
            "reasons": {r.value: n for r, n in sorted(
                self.reasons.items(), key=lambda kv: kv[0].value
            )},
            "by_page": {
                str(page): {o.value: n for o, n in counts.items()}
                for page, counts in sorted(self.by_page.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ActionTally":
        """Rebuild a tally from :meth:`to_dict` output."""
        out = cls(
            hot_pages=int(data["hot_pages"]),
            migrated=int(data["migrated"]),
            replicated=int(data["replicated"]),
            no_action=int(data["no_action"]),
            no_page=int(data["no_page"]),
        )
        for value, n in data["reasons"].items():
            out.reasons[Reason(value)] = int(n)
        for page, counts in data["by_page"].items():
            out.by_page[int(page)] = {
                Outcome(o): int(n) for o, n in counts.items()
            }
        return out

    def percentages(self) -> Dict[str, float]:
        """Table 4 row: percentage per outcome."""
        total = max(self.hot_pages, 1)
        return {
            "% Migrate": 100.0 * self.migrated / total,
            "% Replicate": 100.0 * self.replicated / total,
            "% No Action": 100.0 * self.no_action / total,
            "% No Page": 100.0 * self.no_page / total,
        }


class PagerHandler:
    """Services hot-page interrupt batches against the VM system."""

    def __init__(
        self,
        vm: VmSystem,
        directory: DirectoryArray,
        params: PolicyParameters,
        costs: KernelCostModel,
        accounting: KernelCostAccounting,
        n_cpus: int,
        node_of_cpu: Callable[[int], int],
        node_of_process: Callable[[int], int],
        cpu_of_process: Callable[[int], Optional[int]],
        shootdown_mode: ShootdownMode = ShootdownMode.ALL_CPUS,
        tracer=None,
        decision_hook: Optional[
            Callable[[int, object, "Decision"], Optional["Decision"]]
        ] = None,
    ) -> None:
        self.vm = vm
        self.directory = directory
        self.params = params
        self.costs = costs
        self.accounting = accounting
        self.n_cpus = n_cpus
        self.node_of_cpu = node_of_cpu
        self.node_of_process = node_of_process
        self.cpu_of_process = cpu_of_process
        self.shootdown_mode = shootdown_mode
        #: Optional policy seam: called after the decision tree as
        #: ``decision_hook(now_ns, hot_event, decision)``; returning a
        #: :class:`~repro.policy.decision.Decision` replaces the tree's
        #: verdict (returning None keeps it).  The co-placement layer
        #: uses this to substitute "move the thread" for "move the page"
        #: when the cost model says the thread is cheaper.
        self.decision_hook = decision_hook
        self.tracer = as_tracer(tracer)
        self.shootdown = ShootdownPlanner(
            shootdown_mode,
            n_cpus,
            cpu_of_process,
            tracer=self.tracer,
            flush_base_ns=costs.tlb_flush_base_ns,
            flush_per_cpu_ns=costs.tlb_flush_per_cpu_ns,
        )
        self.tally = ActionTally()

    @property
    def tlbs_flushed(self) -> int:
        """TLBs flushed across all of this handler's flush rounds."""
        return self.shootdown.tlbs_flushed

    @property
    def flush_operations(self) -> int:
        """Flush rounds issued (one per batch with moved pages)."""
        return self.shootdown.flush_operations

    def register_metrics(self, registry) -> None:
        """Expose the Table 4 tally and flush stats under ``kernel.pager``."""
        tally = self.tally
        registry.register_callback(
            "kernel.pager.hot_pages", lambda: tally.hot_pages
        )
        registry.register_callback(
            "kernel.pager.migrated", lambda: tally.migrated
        )
        registry.register_callback(
            "kernel.pager.replicated", lambda: tally.replicated
        )
        registry.register_callback(
            "kernel.pager.no_action", lambda: tally.no_action
        )
        registry.register_callback(
            "kernel.pager.no_page", lambda: tally.no_page
        )
        self.shootdown.register_metrics(registry, "kernel.pager")

    # -- the interrupt path (Figure 2) ------------------------------------------

    def handle_batch(self, now_ns: int, batch: HotBatch) -> List[PageActionResult]:
        """Service one pager interrupt."""
        if not len(batch):
            return []
        acct, costs = self.accounting, self.costs
        n_pages = len(batch)
        # Step 2: interrupt processing, paid once and amortised.
        acct.charge(CostCategory.INTR_PROC, costs.interrupt_ns)
        intr_share = costs.interrupt_ns / n_pages
        results: List[PageActionResult] = []
        moved_frames: List[PageFrame] = []
        op_records: List = []  # (op_type, latency so far) per moved page
        # Pages in one batch are handled sequentially by the interrupted
        # CPU; the handler clock advances so they do not contend with
        # themselves on memlock (only with other CPUs' handlers).
        op_clock = now_ns + costs.interrupt_ns
        for event in batch.events:
            result, frame, op, latency, waited = self._handle_page(
                int(op_clock), event, intr_share
            )
            results.append(result)
            self.tally.add(result)
            # Advance by the op's *work*; waits overlap other handlers'
            # work and must not feed back into lock acquisition times.
            op_clock += max(latency - intr_share - waited, 0.0)
            if frame is not None:
                moved_frames.append(frame)
                op_records.append((op, latency))
        # Step 6: one TLB flush for the whole batch.  The handler waits for
        # one parallel flush round (the Table 5 latency); every flushed CPU
        # burns its own flush time, so the *system-wide* kernel cost is the
        # per-CPU work times the number of CPUs flushed (the Table 6 cost,
        # and the reason flushing dominates that table).
        if moved_frames:
            flushed = self.shootdown.flush(now_ns, moved_frames, batch.cpu)
            system_work = (
                costs.tlb_flush_base_ns + costs.tlb_flush_per_cpu_ns * flushed
            )
            acct.charge(CostCategory.TLB_FLUSH, system_work)
            handler_wait = costs.tlb_flush_base_ns + costs.tlb_flush_per_cpu_ns
            share = handler_wait / len(moved_frames)
            for op, latency in op_records:
                acct.attribute_op(op, CostCategory.TLB_FLUSH, share)
                acct.finish_op(op, latency + share)
        return results

    def _no_action(self, now_ns: int, page: int, cpu: int, reason: str) -> None:
        """Trace one deliberate (or race-forced) leave-alone decision."""
        if self.tracer.active:
            self.tracer.emit(
                NoActionDecision(t=now_ns, page=page, cpu=cpu, reason=reason)
            )

    def _handle_page(self, now_ns: int, event, intr_share: float):
        """Steps 3–5, 7–8 for one hot page.

        Returns (result, moved_frame_or_None, op_type, latency, lock_wait).
        """
        acct, costs = self.accounting, self.costs
        page, cpu = event.page, event.cpu
        # Step 3: read counters, run the decision tree.
        acct.charge(CostCategory.POLICY_DECISION, costs.decision_ns)
        latency = intr_share + costs.decision_ns
        master = self.vm.master_of(page)
        counters = self.directory.bank.get(page)
        if master is None or counters is None:
            self.directory.acted_on(page)
            self._no_action(now_ns, page, cpu, "stale-counters")
            return (
                PageActionResult(page, cpu, Outcome.NO_ACTION),
                None,
                None,
                latency,
                0.0,
            )
        pressure = self.vm.allocator.under_pressure(self.node_of_cpu(cpu))
        decision = decide(
            counters.miss,
            counters.writes,
            counters.migrates,
            cpu,
            self.params,
            memory_pressure=pressure,
        )
        if self.decision_hook is not None:
            override = self.decision_hook(now_ns, event, decision)
            if override is not None:
                decision = override
        action = decision.action
        # Hotspot migration targets the dominant sharer, not the requester.
        target_cpu = (
            decision.target_cpu if decision.target_cpu is not None else cpu
        )
        target_node = self.node_of_cpu(target_cpu)
        if action is Action.MIGRATE and master.has_replicas:
            # The page was replicated in an earlier interval; this
            # interval's counters only show the requester.  Migrating a
            # replicated page is impossible — extend the replica set to
            # the requester's node instead (it already passed the write
            # test when it was first replicated).
            action = (
                Action.REPLICATE
                if self.params.enable_replication
                else Action.NOTHING
            )
        if (
            action is Action.MIGRATE
            and not master.has_replicas
            and master.node == target_node
        ):
            # Hotspot target already holds the page: nothing to move.
            self.directory.latch(page)
            self._no_action(now_ns, page, cpu, "target-already-home")
            return (
                PageActionResult(page, cpu, Outcome.NO_ACTION, decision.reason),
                None,
                None,
                latency,
                0.0,
            )
        if action is not Action.NOTHING and target_node in master.copy_nodes():
            # A copy landed on the target while the interrupt was pending;
            # just re-point the requester (cheap) and stop.
            self._adopt_replica(event, master)
            self.directory.acted_on(page)
            self._no_action(now_ns, page, cpu, "adopted-replica")
            return (
                PageActionResult(page, cpu, Outcome.NO_ACTION, decision.reason),
                None,
                None,
                latency,
                0.0,
            )
        if action is Action.NOTHING:
            self.directory.latch(page)
            self._no_action(now_ns, page, cpu, decision.reason.value)
            return (
                PageActionResult(page, cpu, Outcome.NO_ACTION, decision.reason),
                None,
                None,
                latency,
                0.0,
            )
        if action is Action.MIGRATE:
            return self._migrate(
                now_ns, event, latency, intr_share, target_node,
                decision.reason,
            )
        return self._replicate(now_ns, event, latency, intr_share)

    def _migrate(
        self,
        now_ns: int,
        event,
        latency: float,
        intr_share: float,
        target: int,
        reason: Reason = Reason.UNSHARED,
    ):
        acct, costs = self.accounting, self.costs
        page, cpu = event.page, event.cpu
        op = OpType.MIGRATION
        trace = self.tracer.active
        src = self.vm.master_of(page).node if trace else -1
        # Step 4: allocate on the target node (memlock protects free lists).
        wait_alloc = self.vm.locks.memlock.acquire(
            now_ns, costs.memlock_hold_alloc_ns
        ).wait_ns
        alloc_ns = costs.page_alloc_ns + wait_alloc
        try:
            new_frame = self.vm.migrate(page, target)
        except AllocationError:
            # Failed attempts still burn kernel time, but they are not
            # completed operations: keep them out of the Table 5 averages.
            acct.charge(CostCategory.PAGE_ALLOC, alloc_ns)
            self.directory.acted_on(page)
            if trace:
                self.tracer.emit(
                    MigrationDecision(
                        t=now_ns, page=page, cpu=cpu, src=src, dst=target,
                        outcome="no-page", reason=reason.value,
                        latency_ns=latency + alloc_ns,
                    )
                )
            return (
                PageActionResult(page, cpu, Outcome.NO_PAGE),
                None,
                None,
                latency + alloc_ns,
                wait_alloc,
            )
        acct.attribute_op(op, CostCategory.INTR_PROC, intr_share)
        acct.attribute_op(op, CostCategory.POLICY_DECISION, costs.decision_ns)
        latency += acct.charge(CostCategory.PAGE_ALLOC, alloc_ns, op)
        # Step 5: unlink old page, link new, update ptes (memlock again for
        # the physical-page hash table).
        wait_links = self.vm.locks.memlock.acquire(
            now_ns, costs.memlock_hold_links_ns
        ).wait_ns
        latency += acct.charge(
            CostCategory.LINKS_MAPPING, costs.links_mapping_migr_ns + wait_links, op
        )
        # Step 7: the data copy.
        latency += acct.charge(CostCategory.PAGE_COPY, costs.page_copy_ns, op)
        # Step 8: free old page, final mapping updates.
        latency += acct.charge(
            CostCategory.POLICY_END, costs.policy_end_migr_ns, op
        )
        # Downstream faults as processes reload the changed mappings.
        acct.charge(CostCategory.PAGE_FAULT, costs.page_fault_ns, op)
        self.directory.bank.note_migration(page)
        self.directory.acted_on(page)
        if trace:
            self.tracer.emit(
                MigrationDecision(
                    t=now_ns, page=page, cpu=cpu, src=src, dst=target,
                    outcome="migrated", reason=reason.value,
                    latency_ns=latency,
                )
            )
        return (
            PageActionResult(page, cpu, Outcome.MIGRATED, reason),
            new_frame,
            op,
            latency,
            wait_alloc + wait_links,
        )

    def _replicate(self, now_ns: int, event, latency: float, intr_share: float):
        acct, costs = self.accounting, self.costs
        page, cpu = event.page, event.cpu
        target = self.node_of_cpu(cpu)
        op = OpType.REPLICATION
        trace = self.tracer.active
        src = self.vm.master_of(page).node if trace else -1
        # Step 4: allocation still serialises on memlock for the free list,
        # but the replica chain update needs only the page-level lock.
        wait_alloc = self.vm.locks.memlock.acquire(
            now_ns, costs.memlock_hold_alloc_ns
        ).wait_ns
        alloc_ns = costs.page_alloc_ns + wait_alloc
        try:
            replica = self.vm.replicate(page, target, self.node_of_process)
        except AllocationError:
            acct.charge(CostCategory.PAGE_ALLOC, alloc_ns)
            self.directory.acted_on(page)
            if trace:
                self.tracer.emit(
                    ReplicationDecision(
                        t=now_ns, page=page, cpu=cpu, src=src, dst=target,
                        outcome="no-page", reason=Reason.SHARED_READ.value,
                        latency_ns=latency + alloc_ns,
                    )
                )
            return (
                PageActionResult(page, cpu, Outcome.NO_PAGE),
                None,
                None,
                latency + alloc_ns,
                wait_alloc,
            )
        acct.attribute_op(op, CostCategory.INTR_PROC, intr_share)
        acct.attribute_op(op, CostCategory.POLICY_DECISION, costs.decision_ns)
        latency += acct.charge(CostCategory.PAGE_ALLOC, alloc_ns, op)
        # Step 5: chain the replica (page-level lock only).
        wait_links = self.vm.locks.page_lock(page).acquire(
            now_ns, costs.page_lock_hold_ns
        ).wait_ns
        latency += acct.charge(
            CostCategory.LINKS_MAPPING, costs.links_mapping_repl_ns + wait_links, op
        )
        # Step 7: the data copy.
        latency += acct.charge(CostCategory.PAGE_COPY, costs.page_copy_ns, op)
        # Step 8: every mapping re-pointed to the nearest replica (longer
        # than migration's, as in Table 5).
        latency += acct.charge(
            CostCategory.POLICY_END, costs.policy_end_repl_ns, op
        )
        acct.charge(CostCategory.PAGE_FAULT, costs.page_fault_ns, op)
        self.directory.acted_on(page)
        if trace:
            self.tracer.emit(
                ReplicationDecision(
                    t=now_ns, page=page, cpu=cpu, src=src, dst=target,
                    outcome="replicated", reason=Reason.SHARED_READ.value,
                    latency_ns=latency,
                )
            )
        return (
            PageActionResult(page, cpu, Outcome.REPLICATED, Reason.SHARED_READ),
            replica,
            op,
            latency,
            wait_alloc + wait_links,
        )

    def _adopt_replica(self, event, master: PageFrame) -> None:
        """Re-point a process at an existing local replica (cheap path)."""
        if event.process < 0:
            return
        pte = self.vm.page_tables.table(event.process).lookup(event.page)
        if pte is None:
            return
        nearest = master.nearest_copy(self.node_of_cpu(event.cpu))
        if pte.frame is not nearest:
            pte.remap(nearest)
            self.accounting.charge(
                CostCategory.LINKS_MAPPING, self.costs.page_lock_hold_ns
            )


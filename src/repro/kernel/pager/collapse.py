"""The page-collapse path: a store to a replicated page.

Replicated pages are mapped read-only, so a write traps into the
protection fault handler (pfault), which collapses the replicas to a
single page before letting the store proceed (Section 4).  The collapse
keeps the copy on the writer's node when one exists — the write is about
to make that node's copy the hot one anyway.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.pager.costs import (
    CostCategory,
    KernelCostAccounting,
    KernelCostModel,
    OpType,
)
from repro.kernel.vm.shootdown import ShootdownMode, ShootdownPlanner
from repro.kernel.vm.system import VmSystem
from repro.machine.directory import DirectoryArray
from repro.obs.events import CollapseEvent
from repro.obs.tracer import as_tracer


class CollapseHandler:
    """Collapses replicated pages on write faults."""

    def __init__(
        self,
        vm: VmSystem,
        directory: DirectoryArray,
        costs: KernelCostModel,
        accounting: KernelCostAccounting,
        n_cpus: int,
        node_of_cpu: Callable[[int], int],
        cpu_of_process: Callable[[int], Optional[int]],
        shootdown_mode: ShootdownMode = ShootdownMode.ALL_CPUS,
        tracer=None,
    ) -> None:
        self.vm = vm
        self.directory = directory
        self.costs = costs
        self.accounting = accounting
        self.n_cpus = n_cpus
        self.node_of_cpu = node_of_cpu
        self.cpu_of_process = cpu_of_process
        self.shootdown_mode = shootdown_mode
        self.tracer = as_tracer(tracer)
        self.shootdown = ShootdownPlanner(
            shootdown_mode,
            n_cpus,
            cpu_of_process,
            tracer=self.tracer,
            flush_base_ns=costs.tlb_flush_base_ns,
            flush_per_cpu_ns=costs.tlb_flush_per_cpu_ns,
        )
        self.collapses = 0

    def register_metrics(self, registry) -> None:
        """Expose collapse activity under ``kernel.collapse``."""
        registry.register_callback(
            "kernel.collapse.count", lambda: self.collapses
        )
        self.shootdown.register_metrics(registry, "kernel.collapse")

    def handle_write_fault(self, now_ns: int, page: int, cpu: int) -> bool:
        """Collapse ``page`` because ``cpu`` wrote to it.

        Returns True when a collapse happened (False when the page was no
        longer replicated by the time the fault was serviced).
        """
        master = self.vm.master_of(page)
        if master is None or not master.has_replicas:
            return False
        acct, costs = self.accounting, self.costs
        op = OpType.COLLAPSE
        latency = acct.charge(CostCategory.PAGE_FAULT, costs.page_fault_ns, op)
        keep_node = self.node_of_cpu(cpu)
        replicas_dropped = len(master.all_copies()) - 1
        # Mapping updates under the page lock, then bookkeeping.
        wait = self.vm.locks.page_lock(page).acquire(
            now_ns, costs.page_lock_hold_ns
        ).wait_ns
        latency += acct.charge(
            CostCategory.LINKS_MAPPING, costs.collapse_ns + wait, op
        )
        # Every stale mapping must leave the TLBs before the store retries;
        # the flush is planned from the pre-collapse mappings (those are
        # the TLB entries that go stale), so it runs before the collapse.
        flushed = self.shootdown.flush(now_ns, [master], cpu)
        self.vm.collapse(page, keep_node=keep_node)
        latency += acct.charge(
            CostCategory.TLB_FLUSH,
            costs.tlb_flush_base_ns + costs.tlb_flush_per_cpu_ns * flushed,
            op,
        )
        latency += acct.charge(
            CostCategory.POLICY_END, costs.policy_end_migr_ns, op
        )
        acct.finish_op(op, latency)
        self.collapses += 1
        self.directory.acted_on(page)
        if self.tracer.active:
            self.tracer.emit(
                CollapseEvent(
                    t=now_ns,
                    page=page,
                    cpu=cpu,
                    keep_node=keep_node,
                    replicas_dropped=replicas_dropped,
                    latency_ns=latency,
                )
            )
        return True

"""The page-collapse path: a store to a replicated page.

Replicated pages are mapped read-only, so a write traps into the
protection fault handler (pfault), which collapses the replicas to a
single page before letting the store proceed (Section 4).  The collapse
keeps the copy on the writer's node when one exists — the write is about
to make that node's copy the hot one anyway.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.pager.costs import (
    CostCategory,
    KernelCostAccounting,
    KernelCostModel,
    OpType,
)
from repro.kernel.vm.shootdown import ShootdownMode, plan_flush
from repro.kernel.vm.system import VmSystem
from repro.machine.directory import DirectoryArray


class CollapseHandler:
    """Collapses replicated pages on write faults."""

    def __init__(
        self,
        vm: VmSystem,
        directory: DirectoryArray,
        costs: KernelCostModel,
        accounting: KernelCostAccounting,
        n_cpus: int,
        node_of_cpu: Callable[[int], int],
        cpu_of_process: Callable[[int], Optional[int]],
        shootdown_mode: ShootdownMode = ShootdownMode.ALL_CPUS,
    ) -> None:
        self.vm = vm
        self.directory = directory
        self.costs = costs
        self.accounting = accounting
        self.n_cpus = n_cpus
        self.node_of_cpu = node_of_cpu
        self.cpu_of_process = cpu_of_process
        self.shootdown_mode = shootdown_mode
        self.collapses = 0

    def handle_write_fault(self, now_ns: int, page: int, cpu: int) -> bool:
        """Collapse ``page`` because ``cpu`` wrote to it.

        Returns True when a collapse happened (False when the page was no
        longer replicated by the time the fault was serviced).
        """
        master = self.vm.master_of(page)
        if master is None or not master.has_replicas:
            return False
        acct, costs = self.accounting, self.costs
        op = OpType.COLLAPSE
        latency = acct.charge(CostCategory.PAGE_FAULT, costs.page_fault_ns, op)
        keep_node = self.node_of_cpu(cpu)
        # Plan the flush from the pre-collapse mappings: those are the TLB
        # entries that go stale.
        cpus = plan_flush(
            [master], self.shootdown_mode, self.n_cpus, self.cpu_of_process
        )
        # Mapping updates under the page lock, then bookkeeping.
        wait = self.vm.locks.page_lock(page).acquire(
            now_ns, costs.page_lock_hold_ns
        ).wait_ns
        latency += acct.charge(
            CostCategory.LINKS_MAPPING, costs.collapse_ns + wait, op
        )
        self.vm.collapse(page, keep_node=keep_node)
        # Every stale mapping must leave the TLBs before the store retries.
        flushed = (
            self.n_cpus
            if self.shootdown_mode is ShootdownMode.ALL_CPUS
            else max(len(cpus), 1)
        )
        latency += acct.charge(
            CostCategory.TLB_FLUSH,
            costs.tlb_flush_base_ns + costs.tlb_flush_per_cpu_ns * flushed,
            op,
        )
        latency += acct.charge(
            CostCategory.POLICY_END, costs.policy_end_migr_ns, op
        )
        acct.finish_op(op, latency)
        self.collapses += 1
        self.directory.acted_on(page)
        return True

"""Kernel cost model and overhead accounting (Tables 5 and 6).

Each step of the Figure 2 pager path has a base cost calibrated to the
latencies Table 5 reports (in the hundreds of microseconds per page
operation), and lock waits computed by the simulated memlock / page locks
are added to the step that acquired them — which is how the paper's
workload-to-workload differences arise (engineering's 184 µs page
allocation is mostly memlock contention; raytrace's 74 µs is not).

Interrupt processing and the TLB flush are paid once per *batch* and
amortised over the batch's pages, exactly as the paper describes.

For the CC-NOW configuration the steps that cross the network (the data
copy and the inter-processor flush synchronisation) stretch with the
remote latency; :meth:`KernelCostModel.for_machine` reproduces the paper's
observation that the per-operation cost grows to ~600 µs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.common.stats import OnlineStats
from repro.common.units import us
from repro.machine.config import MachineConfig

#: Baseline CC-NUMA remote latency the cost model was calibrated against.
_BASELINE_REMOTE_NS = 1200


class CostCategory(enum.Enum):
    """The overhead categories of Tables 5 and 6."""

    INTR_PROC = "Intr. Proc"
    POLICY_DECISION = "Policy Decision"
    PAGE_ALLOC = "Page Alloc"
    LINKS_MAPPING = "Links & Mapping"
    TLB_FLUSH = "TLB Flush"
    PAGE_COPY = "Page Copying"
    POLICY_END = "Policy End"
    PAGE_FAULT = "Page Fault"


class OpType(enum.Enum):
    """Kinds of pager operations."""

    MIGRATION = "migration"
    REPLICATION = "replication"
    COLLAPSE = "collapse"


@dataclass(frozen=True)
class KernelCostModel:
    """Base (uncontended) step costs, in nanoseconds."""

    interrupt_ns: int = us(50)             # per interrupt (batch)
    decision_ns: int = us(13)              # per page
    page_alloc_ns: int = us(55)            # per page, + memlock wait
    memlock_hold_alloc_ns: int = us(12)    # memlock hold while allocating
    links_mapping_repl_ns: int = us(30)    # replica chained under page lock
    links_mapping_migr_ns: int = us(55)    # hash-table swap under memlock
    memlock_hold_links_ns: int = us(8)
    page_lock_hold_ns: int = us(12)
    tlb_flush_base_ns: int = us(40)        # per flush (batch), + per CPU
    tlb_flush_per_cpu_ns: int = us(62)
    page_copy_ns: int = us(95)             # unoptimised bcopy (~100 us)
    page_copy_pipelined_ns: int = us(35)   # MAGIC memory-to-memory copy
    policy_end_repl_ns: int = us(76)       # all mappings -> nearest replica
    policy_end_migr_ns: int = us(60)
    page_fault_ns: int = us(48)            # downstream faults per operation
    collapse_ns: int = us(90)              # collapse-specific bookkeeping

    @classmethod
    def for_machine(
        cls, machine: MachineConfig, pipelined_copy: bool = False
    ) -> "KernelCostModel":
        """Scale network-bound steps for the machine's remote latency.

        The copy moves a page across the network and the flush requires a
        round of inter-processor synchronisation; both stretch as remote
        latency grows (CC-NOW's per-operation cost reaches ~600 µs,
        Section 7.1.3).
        """
        model = cls()
        factor = max(1.0, machine.memory.remote_ns / _BASELINE_REMOTE_NS)
        if factor == 1.0 and not pipelined_copy:
            return model
        copy = model.page_copy_pipelined_ns if pipelined_copy else model.page_copy_ns
        return replace(
            model,
            page_copy_ns=int(copy * (1 + 0.85 * (factor - 1))),
            tlb_flush_per_cpu_ns=int(
                model.tlb_flush_per_cpu_ns * (1 + 0.5 * (factor - 1))
            ),
            tlb_flush_base_ns=int(
                model.tlb_flush_base_ns * (1 + 0.5 * (factor - 1))
            ),
            policy_end_repl_ns=int(
                model.policy_end_repl_ns * (1 + 0.25 * (factor - 1))
            ),
            policy_end_migr_ns=int(
                model.policy_end_migr_ns * (1 + 0.25 * (factor - 1))
            ),
        )


class KernelCostAccounting:
    """Accumulates pager overhead by category and per-operation latency."""

    def __init__(self) -> None:
        self.category_ns: Dict[CostCategory, float] = {
            c: 0.0 for c in CostCategory
        }
        self.op_category_ns: Dict[Tuple[OpType, CostCategory], float] = {}
        self.op_counts: Dict[OpType, int] = {op: 0 for op in OpType}
        self.op_latency: Dict[OpType, OnlineStats] = {
            op: OnlineStats() for op in OpType
        }

    def charge(
        self,
        category: CostCategory,
        ns: float,
        op: Optional[OpType] = None,
    ) -> float:
        """Record ``ns`` of kernel time in ``category``; returns ``ns``."""
        if ns < 0:
            raise ValueError("cannot charge negative time")
        self.category_ns[category] += ns
        if op is not None:
            self.attribute_op(op, category, ns)
        return ns

    def attribute_op(self, op: OpType, category: CostCategory, ns: float) -> float:
        """Attribute ``ns`` to an operation's Table 5 step *without* adding
        to the machine-wide overhead (used for amortised shares whose total
        was charged once per batch)."""
        key = (op, category)
        self.op_category_ns[key] = self.op_category_ns.get(key, 0.0) + ns
        return ns

    def finish_op(self, op: OpType, latency_ns: float) -> None:
        """Record the end-to-end latency of one completed operation."""
        self.op_counts[op] += 1
        self.op_latency[op].add(latency_ns)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the full accounting state."""
        return {
            "category_ns": {
                c.name: v for c, v in self.category_ns.items()
            },
            "op_category_ns": {
                f"{op.value}/{cat.name}": v
                for (op, cat), v in sorted(
                    self.op_category_ns.items(),
                    key=lambda kv: (kv[0][0].value, kv[0][1].name),
                )
            },
            "op_counts": {op.value: n for op, n in self.op_counts.items()},
            "op_latency": {
                op.value: stats.to_dict()
                for op, stats in self.op_latency.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelCostAccounting":
        """Rebuild the accounting from :meth:`to_dict` output."""
        out = cls()
        for name, v in data["category_ns"].items():
            out.category_ns[CostCategory[name]] = float(v)
        for key, v in data["op_category_ns"].items():
            op_value, cat_name = key.split("/", 1)
            out.op_category_ns[(OpType(op_value), CostCategory[cat_name])] = (
                float(v)
            )
        for op_value, n in data["op_counts"].items():
            out.op_counts[OpType(op_value)] = int(n)
        for op_value, stats in data["op_latency"].items():
            out.op_latency[OpType(op_value)] = OnlineStats.from_dict(stats)
        return out

    def register_metrics(self, registry) -> None:
        """Expose the Table 5/6 accounting under ``kernel.costs``.

        Per-category totals and per-operation counts become collect-time
        callbacks; the per-operation latency accumulators join the
        registry by reference as a labeled histogram family.
        """
        registry.register_callback(
            "kernel.costs.total_overhead_ns", lambda: self.total_overhead_ns
        )
        for category in CostCategory:
            registry.register_callback(
                f"kernel.costs.category_ns.{category.name.lower()}",
                lambda c=category: self.category_ns[c],
            )
        family = registry.family("kernel.costs.op_latency_ns")
        for op in OpType:
            registry.register_callback(
                f"kernel.costs.ops.{op.value}", lambda o=op: self.op_counts[o]
            )
            family.attach(self.op_latency[op], op=op.value)

    # -- table views --------------------------------------------------------------

    @property
    def total_overhead_ns(self) -> float:
        """Total kernel time spent on page movement."""
        return sum(self.category_ns.values())

    def overhead_percentages(self) -> Dict[CostCategory, float]:
        """Table 6: percentage of total kernel overhead per category."""
        total = self.total_overhead_ns
        if total == 0:
            return {c: 0.0 for c in CostCategory}
        return {c: 100.0 * v / total for c, v in self.category_ns.items()}

    def mean_step_latency_us(
        self, op: OpType, category: CostCategory
    ) -> float:
        """Table 5: average per-operation time in one step, microseconds."""
        count = self.op_counts[op]
        if count == 0:
            return 0.0
        return self.op_category_ns.get((op, category), 0.0) / count / 1000.0

    def mean_op_latency_us(self, op: OpType) -> float:
        """Table 5: average end-to-end operation latency, microseconds."""
        return self.op_latency[op].mean / 1000.0

    def table5_row(self, op: OpType) -> Dict[str, float]:
        """One Table 5 row: per-step and total latencies in microseconds."""
        row = {
            category.value: self.mean_step_latency_us(op, category)
            for category in (
                CostCategory.INTR_PROC,
                CostCategory.POLICY_DECISION,
                CostCategory.PAGE_ALLOC,
                CostCategory.LINKS_MAPPING,
                CostCategory.TLB_FLUSH,
                CostCategory.PAGE_COPY,
                CostCategory.POLICY_END,
            )
        }
        row["Total Latency"] = self.mean_op_latency_us(op)
        return row

"""The pager: interrupt handling, collapse path, cost accounting."""

from repro.kernel.pager.collapse import CollapseHandler
from repro.kernel.pager.costs import (
    CostCategory,
    KernelCostAccounting,
    KernelCostModel,
    OpType,
)
from repro.kernel.pager.handler import (
    ActionTally,
    Outcome,
    PageActionResult,
    PagerHandler,
)

__all__ = [
    "CollapseHandler",
    "CostCategory",
    "KernelCostAccounting",
    "KernelCostModel",
    "OpType",
    "ActionTally",
    "Outcome",
    "PageActionResult",
    "PagerHandler",
]

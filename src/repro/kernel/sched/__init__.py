"""Schedulers: affinity, space-partition, pinned."""

from repro.kernel.sched.affinity import AffinityScheduler
from repro.kernel.sched.partition import SpacePartitionScheduler
from repro.kernel.sched.pinned import PinnedScheduler
from repro.kernel.sched.process import Epoch, Process, Schedule

__all__ = [
    "AffinityScheduler",
    "SpacePartitionScheduler",
    "PinnedScheduler",
    "Epoch",
    "Process",
    "Schedule",
]

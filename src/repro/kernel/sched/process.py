"""Processes, scheduling epochs and schedules.

Scheduling in this reproduction is represented as a *schedule*: a list of
epochs, each mapping CPUs to the process running on them for a span of
virtual time.  Workload generators emit misses according to the schedule,
and the kernel consults it for "which CPU is process P on now" (needed by
replication's nearest-copy mapping update and by tracked TLB shootdown).

Generating the schedule up front keeps every run deterministic while still
expressing the three scheduler behaviours the paper's workloads use:
priority scheduling with cache affinity (engineering, pmake), space
partitioning (splash), and hard pinning (raytrace, database).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.common.errors import SchedulerError


@dataclass(frozen=True)
class Process:
    """A schedulable entity."""

    pid: int
    name: str
    job: str = ""          # job/application the process belongs to
    arrival_ns: int = 0
    departure_ns: Optional[int] = None   # None = runs to end of workload

    def alive_at(self, time_ns: int) -> bool:
        """True when the process exists at ``time_ns``."""
        if time_ns < self.arrival_ns:
            return False
        return self.departure_ns is None or time_ns < self.departure_ns


@dataclass
class Epoch:
    """One span of time with a fixed CPU -> process assignment."""

    start_ns: int
    end_ns: int
    running: Dict[int, int] = field(default_factory=dict)  # cpu -> pid

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise SchedulerError("epoch must have positive duration")
        pids = list(self.running.values())
        if len(pids) != len(set(pids)):
            raise SchedulerError("a process cannot run on two CPUs at once")

    @property
    def duration_ns(self) -> int:
        """Epoch length."""
        return self.end_ns - self.start_ns

    def cpu_of(self, pid: int) -> Optional[int]:
        """CPU ``pid`` runs on in this epoch (None when descheduled)."""
        for cpu, running_pid in self.running.items():
            if running_pid == pid:
                return cpu
        return None

    def idle_cpus(self, n_cpus: int) -> List[int]:
        """CPUs with nothing to run this epoch."""
        return [c for c in range(n_cpus) if c not in self.running]


class Schedule:
    """A time-ordered, gap-free sequence of epochs."""

    def __init__(self, epochs: Sequence[Epoch], n_cpus: int) -> None:
        if not epochs:
            raise SchedulerError("a schedule needs at least one epoch")
        self.n_cpus = n_cpus
        self.epochs: List[Epoch] = list(epochs)
        previous_end = self.epochs[0].start_ns
        for epoch in self.epochs:
            if epoch.start_ns != previous_end:
                raise SchedulerError("epochs must be contiguous")
            previous_end = epoch.end_ns
        self._starts = [e.start_ns for e in self.epochs]

    @property
    def start_ns(self) -> int:
        """Schedule start time."""
        return self.epochs[0].start_ns

    @property
    def end_ns(self) -> int:
        """Schedule end time."""
        return self.epochs[-1].end_ns

    def at(self, time_ns: int) -> Epoch:
        """The epoch covering ``time_ns``."""
        if not self.start_ns <= time_ns < self.end_ns:
            raise SchedulerError(f"time {time_ns} outside schedule")
        index = bisect.bisect_right(self._starts, time_ns) - 1
        return self.epochs[index]

    def cpu_of(self, pid: int, time_ns: int) -> Optional[int]:
        """CPU ``pid`` runs on at ``time_ns`` (None when descheduled)."""
        return self.at(time_ns).cpu_of(pid)

    def __iter__(self) -> Iterator[Epoch]:
        return iter(self.epochs)

    def __len__(self) -> int:
        return len(self.epochs)

    # -- characterisation ------------------------------------------------------

    def migration_count(self, pid: int) -> int:
        """Times ``pid`` resumed on a different CPU than it last ran on."""
        last_cpu: Optional[int] = None
        moves = 0
        for epoch in self.epochs:
            cpu = epoch.cpu_of(pid)
            if cpu is None:
                continue
            if last_cpu is not None and cpu != last_cpu:
                moves += 1
            last_cpu = cpu
        return moves

    def total_migrations(self) -> int:
        """Process migrations summed over every pid seen."""
        pids = {
            pid for epoch in self.epochs for pid in epoch.running.values()
        }
        return sum(self.migration_count(pid) for pid in sorted(pids))

    def cpu_time_ns(self, pid: int) -> int:
        """Total time ``pid`` spent running."""
        return sum(
            e.duration_ns for e in self.epochs if e.cpu_of(pid) is not None
        )

    def idle_time_ns(self) -> int:
        """Total CPU-idle time across the machine."""
        return sum(
            len(e.idle_cpus(self.n_cpus)) * e.duration_ns for e in self.epochs
        )

    def busy_time_ns(self) -> int:
        """Total CPU-busy time across the machine."""
        return sum(len(e.running) * e.duration_ns for e in self.epochs)

"""UNIX priority scheduling with cache affinity [VaZ91].

The engineering and pmake workloads are multiprogrammed: more runnable
processes than CPUs, scheduled by priority with affinity.  Affinity keeps
a process on the CPU it last ran on; fairness and load balancing still
move processes occasionally — and each move strands the process's
first-touch pages on the old node, which is precisely the locality problem
page migration repairs (Section 3.1, group one).

The model: every process has a *home* CPU.  Each quantum, every CPU runs
the most-starved runnable process homed on it.  A blocked process (the
``duty_cycle`` models I/O and synchronisation waits) keeps its home and
resumes there.  When a CPU goes idle while another CPU has more than one
runnable process, the balancer re-homes the most-starved waiter onto the
idle CPU — a genuine process migration.  ``rebalance_probability`` adds
the occasional gratuitous move a real priority scheduler produces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import SchedulerError
from repro.common.rng import make_rng
from repro.kernel.sched.process import Epoch, Process, Schedule

#: Signature of the re-home hook: ``(now_ns, pid, src_cpu, dst_cpu,
#: reason) -> bool``.  ``reason`` is ``"idle-pull"`` (load balancing) or
#: ``"rebalance"`` (gratuitous churn).  Returning False vetoes a
#: gratuitous move; idle-pulls always proceed (they fix a starving
#: queue) but still notify, so a placement policy can track where every
#: thread's home is.
RehomeHook = Callable[[int, int, int, int, str], bool]


class AffinityScheduler:
    """Quantum-based priority scheduler with sticky cache affinity."""

    def __init__(
        self,
        n_cpus: int,
        quantum_ns: int = 20_000_000,
        duty_cycle: float = 1.0,
        rebalance_probability: float = 0.02,
        max_moves_per_quantum: int = 1,
        seed: int = 0,
        rehome_hook: Optional[RehomeHook] = None,
    ) -> None:
        if n_cpus <= 0:
            raise SchedulerError("need at least one CPU")
        if quantum_ns <= 0:
            raise SchedulerError("quantum must be positive")
        if not 0.0 < duty_cycle <= 1.0:
            raise SchedulerError("duty cycle must lie in (0, 1]")
        if not 0.0 <= rebalance_probability <= 1.0:
            raise SchedulerError("rebalance probability must lie in [0, 1]")
        if max_moves_per_quantum < 0:
            raise SchedulerError("max moves must be non-negative")
        self.n_cpus = n_cpus
        self.quantum_ns = quantum_ns
        self.duty_cycle = duty_cycle
        self.rebalance_probability = rebalance_probability
        self.max_moves_per_quantum = max_moves_per_quantum
        self.seed = seed
        #: Optional placement-policy seam (see :data:`RehomeHook`).  The
        #: co-placement policy uses it to keep thread homes aligned with
        #: the page tables those threads walk — and to veto the churny
        #: moves that would strand a thread away from its PT replicas.
        self.rehome_hook = rehome_hook

    def build(self, processes: Sequence[Process], duration_ns: int) -> Schedule:
        """Generate the schedule for ``processes`` over ``duration_ns``."""
        if duration_ns <= 0:
            raise SchedulerError("duration must be positive")
        rng = make_rng(self.seed, "affinity-scheduler")
        home: Dict[int, int] = {}
        last_ran: Dict[int, int] = {}
        idle_streak: List[int] = [0] * self.n_cpus
        epochs: List[Epoch] = []
        time = 0
        quantum_index = 0
        while time < duration_ns:
            end = min(time + self.quantum_ns, duration_ns)
            runnable = []
            for proc in processes:
                if not proc.alive_at(time):
                    home.pop(proc.pid, None)
                    continue
                if proc.pid not in home:
                    home[proc.pid] = self._initial_home(proc.pid, home)
                    last_ran[proc.pid] = -1
                if self.duty_cycle >= 1.0 or rng.random() < self.duty_cycle:
                    runnable.append(proc.pid)
            self._balance(time, runnable, home, last_ran, idle_streak, rng)
            running = self._pick_runners(runnable, home, last_ran)
            for pid in running.values():
                last_ran[pid] = quantum_index
            for cpu in range(self.n_cpus):
                idle_streak[cpu] = 0 if cpu in running else idle_streak[cpu] + 1
            epochs.append(Epoch(start_ns=time, end_ns=end, running=running))
            time = end
            quantum_index += 1
        return Schedule(epochs, self.n_cpus)

    # -- helpers -------------------------------------------------------------------

    def _initial_home(self, pid: int, home: Dict[int, int]) -> int:
        """Least-loaded CPU for a newly arrived process (ties: lowest id)."""
        load = [0] * self.n_cpus
        for cpu in home.values():
            load[cpu] += 1
        return min(range(self.n_cpus), key=lambda c: (load[c], c))

    def _pick_runners(
        self,
        runnable: List[int],
        home: Dict[int, int],
        last_ran: Dict[int, int],
    ) -> Dict[int, int]:
        """Each CPU runs the most-starved runnable process homed on it."""
        queues: Dict[int, List[int]] = {}
        for pid in runnable:
            queues.setdefault(home[pid], []).append(pid)
        running: Dict[int, int] = {}
        for cpu, pids in queues.items():
            pids.sort(key=lambda p: (last_ran[p], p))
            running[cpu] = pids[0]
        return running

    def _balance(
        self,
        now_ns: int,
        runnable: List[int],
        home: Dict[int, int],
        last_ran: Dict[int, int],
        idle_streak: List[int],
        rng,
    ) -> None:
        """Re-home waiters onto persistently idle CPUs (plus rare moves).

        A CPU idle for a single quantum is usually just waiting for its
        blocked process; moving someone there would defeat affinity.  Only
        a CPU idle for two consecutive quanta attracts a waiter.
        """
        moves_left = self.max_moves_per_quantum
        counts = [0] * self.n_cpus
        for pid in runnable:
            counts[home[pid]] += 1
        idle = [
            c
            for c in range(self.n_cpus)
            if counts[c] == 0 and idle_streak[c] >= 2
        ]
        # Pull the most-starved waiter from the deepest queue to each idle CPU.
        while idle and moves_left > 0:
            deepest = max(range(self.n_cpus), key=lambda c: counts[c])
            if counts[deepest] < 2:
                break
            waiters = [p for p in runnable if home[p] == deepest]
            waiters.sort(key=lambda p: (last_ran[p], p))
            mover = waiters[-1] if len(waiters) > 1 else waiters[0]
            target = idle.pop(0)
            if self.rehome_hook is not None:
                # Notify-only for idle pulls: the move fixes starvation.
                self.rehome_hook(now_ns, mover, deepest, target, "idle-pull")
            home[mover] = target
            counts[deepest] -= 1
            counts[target] += 1
            moves_left -= 1
        # Occasional gratuitous rebalance (priority churn in a real
        # kernel).  The RNG draws happen before the hook so a veto does
        # not perturb the schedule of later quanta.
        if runnable and rng.random() < self.rebalance_probability:
            mover = runnable[int(rng.integers(0, len(runnable)))]
            target = int(rng.integers(0, self.n_cpus))
            if self.rehome_hook is not None and not self.rehome_hook(
                now_ns, mover, home[mover], target, "rebalance"
            ):
                return
            home[mover] = target

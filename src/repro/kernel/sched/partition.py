"""Space-partitioning scheduler (scheduler-activations style) [ABL+91, TuG89].

The splash workload runs three parallel applications that enter and leave
the system at different times; CPUs are space-partitioned among the jobs
currently present, and each repartitioning *redistributes the jobs across
the processors*, which is what makes static data placement hard and page
migration valuable for that workload (Section 7.1.1).

The scheduler recomputes the partition at every job arrival or departure:
active jobs receive contiguous CPU ranges proportional to their requested
width, and each job's processes are laid out across its range.  Because
ranges shift when the job mix changes, a process's CPU — and therefore the
locality of its first-touch pages — changes over the run.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.errors import SchedulerError
from repro.kernel.sched.process import Epoch, Process, Schedule


class SpacePartitionScheduler:
    """Partition CPUs among concurrently running parallel jobs."""

    def __init__(self, n_cpus: int) -> None:
        if n_cpus <= 0:
            raise SchedulerError("need at least one CPU")
        self.n_cpus = n_cpus

    def build(self, processes: Sequence[Process], duration_ns: int) -> Schedule:
        """Generate the schedule; epochs break at job arrivals/departures."""
        if duration_ns <= 0:
            raise SchedulerError("duration must be positive")
        boundaries = {0, duration_ns}
        for proc in processes:
            if 0 < proc.arrival_ns < duration_ns:
                boundaries.add(proc.arrival_ns)
            if proc.departure_ns is not None and 0 < proc.departure_ns < duration_ns:
                boundaries.add(proc.departure_ns)
        times = sorted(boundaries)
        epochs: List[Epoch] = []
        for start, end in zip(times, times[1:]):
            running = self._partition(processes, start)
            epochs.append(Epoch(start_ns=start, end_ns=end, running=running))
        return Schedule(epochs, self.n_cpus)

    def _partition(
        self, processes: Sequence[Process], time_ns: int
    ) -> Dict[int, int]:
        """CPU assignment for the job mix alive at ``time_ns``."""
        jobs: Dict[str, List[Process]] = {}
        for proc in processes:
            if proc.alive_at(time_ns):
                jobs.setdefault(proc.job, []).append(proc)
        if not jobs:
            return {}
        shares = self._shares([(job, len(procs)) for job, procs in sorted(jobs.items())])
        running: Dict[int, int] = {}
        cursor = 0
        for job, width in shares:
            procs = sorted(jobs[job], key=lambda p: p.pid)
            cpus = list(range(cursor, cursor + width))
            cursor += width
            # Each job runs up to ``width`` of its processes; the rest are
            # multiplexed in a real system, but at epoch granularity we
            # keep the first ``width`` runnable (deterministic).
            for cpu, proc in zip(cpus, procs):
                running[cpu] = proc.pid
        return running

    def _shares(self, requests: List[Tuple[str, int]]) -> List[Tuple[str, int]]:
        """Largest-remainder split of CPUs proportional to requests."""
        total_request = sum(width for _, width in requests)
        if total_request == 0:
            return [(job, 0) for job, _ in requests]
        raw = [
            (job, min(width, self.n_cpus) * self.n_cpus / total_request, width)
            for job, width in requests
        ]
        floors = [(job, int(share), share - int(share), width) for job, share, width in raw]
        allocated = sum(f for _, f, _, _ in floors)
        spare = self.n_cpus - allocated
        # Hand out the spare CPUs by largest remainder, capped at request.
        by_remainder = sorted(floors, key=lambda item: (-item[2], item[0]))
        result = {job: floor for job, floor, _, _ in floors}
        for job, floor, _, width in by_remainder:
            if spare <= 0:
                break
            if result[job] < width:
                result[job] += 1
                spare -= 1
        # Never allocate more CPUs than a job has processes.
        for job, width in requests:
            result[job] = min(result[job], width)
        return [(job, result[job]) for job, _ in requests]

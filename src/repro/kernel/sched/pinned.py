"""Pinned scheduling: each process locked to one CPU for the whole run.

The raytrace workload locks its worker processes to individual processors
("a common practice for dedicated-use workloads"), and the database locks
its engines to four processors.  Pinning makes migration useless by
construction — any gain those workloads show must come from replication,
which is exactly the behaviour Figure 6 exhibits.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.errors import SchedulerError
from repro.common.rng import make_rng
from repro.kernel.sched.process import Epoch, Process, Schedule


class PinnedScheduler:
    """Lock process ``i`` to CPU ``assignment[i]`` (default: round-robin).

    ``duty_cycle`` models blocking (I/O, synchronisation): each quantum a
    process is runnable with that probability, which produces the idle
    fractions of Table 3 without moving anything between CPUs.
    """

    def __init__(
        self,
        n_cpus: int,
        assignment: Optional[Dict[int, int]] = None,
        duty_cycle: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_cpus <= 0:
            raise SchedulerError("need at least one CPU")
        if not 0.0 < duty_cycle <= 1.0:
            raise SchedulerError("duty cycle must lie in (0, 1]")
        self.n_cpus = n_cpus
        self._assignment = assignment
        self.duty_cycle = duty_cycle
        self.seed = seed

    def build(
        self,
        processes: Sequence[Process],
        duration_ns: int,
        quantum_ns: int = 10_000_000,
    ) -> Schedule:
        """Produce the (single- or multi-epoch) pinned schedule.

        Epochs are still emitted at ``quantum_ns`` granularity so that
        process arrivals/departures take effect, but a resident process
        never changes CPU.
        """
        if duration_ns <= 0 or quantum_ns <= 0:
            raise SchedulerError("duration and quantum must be positive")
        if len(processes) > self.n_cpus and self._assignment is None:
            raise SchedulerError(
                "more processes than CPUs; provide an explicit assignment"
            )
        pin: Dict[int, int] = {}
        for index, proc in enumerate(processes):
            if self._assignment is not None:
                if proc.pid not in self._assignment:
                    raise SchedulerError(f"no pin given for pid {proc.pid}")
                pin[proc.pid] = self._assignment[proc.pid]
            else:
                pin[proc.pid] = index % self.n_cpus
            if not 0 <= pin[proc.pid] < self.n_cpus:
                raise SchedulerError("pin out of CPU range")
        rng = make_rng(self.seed, "pinned-scheduler")
        epochs = []
        time = 0
        while time < duration_ns:
            end = min(time + quantum_ns, duration_ns)
            running = {}
            for p in processes:
                if not p.alive_at(time):
                    continue
                if self.duty_cycle < 1.0 and rng.random() >= self.duty_cycle:
                    continue
                running[pin[p.pid]] = p.pid
            epochs.append(Epoch(start_ns=time, end_ns=end, running=running))
            time = end
        return Schedule(epochs, self.n_cpus)

"""The IRIX-like operating-system substrate: VM, scheduling, pager."""

from repro.kernel import pager, sched, vm

__all__ = ["pager", "sched", "vm"]

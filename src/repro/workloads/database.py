"""The decision-support database workload (Sybase analogue).

Paper characterisation: a commercial main-memory database running
decision-support queries on a *four*-processor configuration with the
engines locked to processors; 20.8 MB footprint, 38 % idle, user data
stall 50.3 % of non-idle.

Structure that matters to the policy (Section 7.1.1, "Database"):

* of the 2.6 million user data misses only ~10 % land on read-mostly
  pages; the other ~90 % concentrate on ~5 % of the pages, which take
  more writes than reads (fine-grain synchronisation) — those pages can
  benefit from neither migration nor replication;
* the policy must be *robust*: Table 4 shows no action taken on 85 % of
  the hot pages, and the workload still gains a little (~5 %) from
  replicating the genuinely read-mostly relations.
"""

from __future__ import annotations

from repro.common.units import ms, sec
from repro.kernel.sched.pinned import PinnedScheduler
from repro.kernel.sched.process import Process
from repro.workloads.base import scaled_duration
from repro.workloads.spec import PageGroupSpec, SharingClass, WorkloadSpec

#: Wall-clock duration at scale 1.0 (cumulative CPU time 30.40 s over 4 CPUs).
BASE_DURATION_NS = sec(30.40 / 4)

N_CPUS = 4


def build(scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Construct the database workload spec."""
    duration = scaled_duration(BASE_DURATION_NS, scale)
    processes = [
        Process(pid=p, name=f"engine.{p}", job="sybase") for p in range(N_CPUS)
    ]
    scheduler = PinnedScheduler(n_cpus=N_CPUS, duty_cycle=0.62, seed=seed)
    schedule = scheduler.build(processes, duration, quantum_ns=ms(20))
    groups = [
        PageGroupSpec(
            name="sync-pages",
            sharing=SharingClass.WRITE_SHARED,
            n_pages=260,
            miss_share=0.82,
            write_fraction=0.55,       # more writes than reads on hot pages
            pages_per_quantum=10,
            hot_fraction=0.15,
            hot_weight=0.90,
            touches_per_miss=3.0,
            tlb_factor=0.60,
        ),
        PageGroupSpec(
            name="relations",
            sharing=SharingClass.READ_SHARED,
            n_pages=4300,
            miss_share=0.10,
            write_fraction=0.0001,
            pages_per_quantum=4,
            hot_fraction=0.005,
            hot_weight=0.85,
            touches_per_miss=6.0,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="engine-private",
            sharing=SharingClass.PRIVATE,
            n_pages=60,
            miss_share=0.035,
            write_fraction=0.30,
            pages_per_quantum=4,
            hot_fraction=0.30,
            tlb_factor=0.30,
        ),
        PageGroupSpec(
            name="code",
            sharing=SharingClass.CODE,
            n_pages=150,
            miss_share=0.045,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            hot_fraction=0.08,
            hot_weight=0.85,
            touches_per_miss=40.0,
            tlb_factor=0.01,
        ),
        PageGroupSpec(
            name="kernel-percpu",
            sharing=SharingClass.KERNEL_PERCPU,
            n_pages=40,
            miss_share=0.55,
            write_fraction=0.30,
            pages_per_quantum=4,
            hot_fraction=0.4,
            tlb_factor=0.40,
        ),
        PageGroupSpec(
            name="kernel-shared",
            sharing=SharingClass.KERNEL_SHARED,
            n_pages=100,
            miss_share=0.30,
            write_fraction=0.50,
            pages_per_quantum=3,
            hot_fraction=0.4,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="kernel-code",
            sharing=SharingClass.KERNEL_CODE,
            n_pages=80,
            miss_share=0.15,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=3,
            hot_fraction=0.3,
            tlb_factor=0.02,
        ),
    ]
    return WorkloadSpec(
        name="database",
        n_cpus=N_CPUS,
        n_nodes=N_CPUS,
        duration_ns=duration,
        quantum_ns=ms(10),
        user_miss_rate=560_000.0,
        kernel_miss_rate=70_000.0,
        compute_time_ns=int(schedule.busy_time_ns() * 0.398),
        groups=groups,
        processes=processes,
        schedule=schedule,
        seed=seed,
        scale=scale,
        frames_per_node=4096,
    )

"""The multiprogrammed scientific workload (Raytrace + Volrend + Ocean).

Paper characterisation: three SPLASH parallel applications entering and
leaving the system at different times, scheduled by space partitioning;
57.6 MB footprint, 18 % idle, user data stall 36.3 % of non-idle.

Structure that matters to the policy (Section 7.1.1, "Splash"):

* repartitioning at every job arrival/departure moves processes across
  CPUs, so static placement is hard — Ocean's nearest-neighbour grids are
  effectively private and *migration* recovers them after each move;
* Raytrace's scene and Volrend's volume are read-mostly and replicable —
  ~30 % of the workload's data misses sit in 512+ read chains;
* the workload is memory-tight per node: 24 % of hot-page activations
  fail with "no page available on the local node" (Table 4), which this
  spec reproduces with a reduced ``frames_per_node``.
"""

from __future__ import annotations

from typing import List

from repro.common.units import ms, sec
from repro.kernel.sched.partition import SpacePartitionScheduler
from repro.kernel.sched.process import Process
from repro.workloads.base import scaled_duration
from repro.workloads.spec import PageGroupSpec, SharingClass, WorkloadSpec

#: Wall-clock duration at scale 1.0 (cumulative CPU time 87.52 s over 8 CPUs).
BASE_DURATION_NS = sec(87.52 / 8)

N_CPUS = 8
N_RAY = 6
N_VOLREND = 5
N_OCEAN = 6


def _processes(duration: int) -> List[Process]:
    """Three jobs with staggered arrivals/departures (fractions of run)."""
    ray = [
        Process(
            pid=p,
            name=f"raytrace.{p}",
            job="raytrace",
            arrival_ns=0,
            departure_ns=int(duration * 0.45),
        )
        for p in range(N_RAY)
    ]
    volrend = [
        Process(
            pid=N_RAY + p,
            name=f"volrend.{p}",
            job="volrend",
            arrival_ns=int(duration * 0.25),
            departure_ns=int(duration * 0.75),
        )
        for p in range(N_VOLREND)
    ]
    ocean = [
        Process(
            pid=N_RAY + N_VOLREND + p,
            name=f"ocean.{p}",
            job="ocean",
            arrival_ns=int(duration * 0.55),
            departure_ns=None,
        )
        for p in range(N_OCEAN)
    ]
    return ray + volrend + ocean


def build(scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Construct the splash workload spec."""
    duration = scaled_duration(BASE_DURATION_NS, scale)
    processes = _processes(duration)
    ray_pids = tuple(range(N_RAY))
    volrend_pids = tuple(range(N_RAY, N_RAY + N_VOLREND))
    ocean_pids = tuple(
        range(N_RAY + N_VOLREND, N_RAY + N_VOLREND + N_OCEAN)
    )
    scheduler = SpacePartitionScheduler(n_cpus=N_CPUS)
    schedule = scheduler.build(processes, duration)
    groups = [
        # -- raytrace job ---------------------------------------------------
        PageGroupSpec(
            name="ray-scene",
            sharing=SharingClass.READ_SHARED,
            n_pages=2400,
            miss_share=0.55,
            write_fraction=0.000002,
            pages_per_quantum=9,
            hot_fraction=0.02,
            tlb_factor=0.50,
            accessors=ray_pids,
        ),
        PageGroupSpec(
            name="ray-private",
            sharing=SharingClass.PRIVATE,
            n_pages=90,
            miss_share=0.25,
            write_fraction=0.30,
            pages_per_quantum=5,
            tlb_factor=0.30,
            accessors=ray_pids,
        ),
        PageGroupSpec(
            name="ray-code",
            sharing=SharingClass.CODE,
            n_pages=90,
            miss_share=0.20,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            tlb_factor=0.01,
            accessors=ray_pids,
        ),
        # -- volrend job ----------------------------------------------------
        PageGroupSpec(
            name="volrend-volume",
            sharing=SharingClass.READ_SHARED,
            n_pages=2200,
            miss_share=0.55,
            write_fraction=0.000004,
            pages_per_quantum=9,
            hot_fraction=0.02,
            tlb_factor=0.50,
            accessors=volrend_pids,
        ),
        PageGroupSpec(
            name="volrend-private",
            sharing=SharingClass.PRIVATE,
            n_pages=80,
            miss_share=0.25,
            write_fraction=0.30,
            pages_per_quantum=5,
            tlb_factor=0.30,
            accessors=volrend_pids,
        ),
        PageGroupSpec(
            name="volrend-code",
            sharing=SharingClass.CODE,
            n_pages=70,
            miss_share=0.20,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            tlb_factor=0.01,
            accessors=volrend_pids,
        ),
        # -- ocean job --------------------------------------------------------
        PageGroupSpec(
            name="ocean-grid",
            sharing=SharingClass.PRIVATE,
            n_pages=1100,
            miss_share=0.72,
            write_fraction=0.30,
            pages_per_quantum=10,
            hot_fraction=0.08,
            tlb_factor=0.30,
            accessors=ocean_pids,
        ),
        PageGroupSpec(
            name="ocean-boundary",
            sharing=SharingClass.WRITE_SHARED,
            n_pages=40,
            miss_share=0.08,
            write_fraction=0.40,
            pages_per_quantum=4,
            hot_fraction=0.5,
            tlb_factor=0.60,
            accessors=ocean_pids,
        ),
        PageGroupSpec(
            name="ocean-code",
            sharing=SharingClass.CODE,
            n_pages=60,
            miss_share=0.20,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            tlb_factor=0.01,
            accessors=ocean_pids,
        ),
        # -- kernel -------------------------------------------------------------
        PageGroupSpec(
            name="kernel-percpu",
            sharing=SharingClass.KERNEL_PERCPU,
            n_pages=60,
            miss_share=0.50,
            write_fraction=0.30,
            pages_per_quantum=5,
            tlb_factor=0.40,
        ),
        PageGroupSpec(
            name="kernel-shared",
            sharing=SharingClass.KERNEL_SHARED,
            n_pages=200,
            miss_share=0.32,
            write_fraction=0.50,
            pages_per_quantum=4,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="kernel-code",
            sharing=SharingClass.KERNEL_CODE,
            n_pages=100,
            miss_share=0.18,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            tlb_factor=0.02,
        ),
    ]
    return WorkloadSpec(
        name="splash",
        n_cpus=N_CPUS,
        n_nodes=N_CPUS,
        duration_ns=duration,
        quantum_ns=ms(10),
        user_miss_rate=480_000.0,
        kernel_miss_rate=160_000.0,
        compute_time_ns=int(schedule.busy_time_ns() * 0.444),
        groups=groups,
        processes=processes,
        schedule=schedule,
        seed=seed,
        scale=scale,
        frames_per_node=1650,      # ~6.8 MB/node: reproduces Table 4's
    )                              # allocation failures on busy nodes

"""Deterministic synthesis of weighted miss traces from a workload spec.

The generator walks the schedule in fixed quanta.  For every (quantum,
CPU) with a running process it splits the CPU's miss budget over the page
groups the process can touch, concentrates each group's share onto a small
set of pages (hot-set skew), and emits weighted read and write records.
All randomness flows from one seeded generator, so a (spec, seed) pair
always produces the identical trace.

The emitted structure is what the policy cares about:

* per-process groups produce misses only from their owner, so their pages
  look unshared to the counters and migrate when the scheduler moves the
  owner;
* shared groups produce misses from every accessor, with a *common* hot
  set, so their pages cross the sharing threshold;
* ``write_fraction`` controls how often a page's read chains terminate,
  deciding between the replication branch and the write-shared veto.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.common.units import SEC
from repro.trace.record import Trace, TraceBuilder
from repro.workloads.spec import GroupInstance, WorkloadSpec


def _normalised(instances: Sequence[GroupInstance]) -> List[Tuple[GroupInstance, float]]:
    """Pair each instance with its share, normalised to sum to one."""
    total = sum(inst.spec.miss_share for inst in instances)
    if total <= 0:
        return []
    return [(inst, inst.spec.miss_share / total) for inst in instances]


class TraceGenerator:
    """Synthesises the weighted miss trace for one workload spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = make_rng(spec.seed, "trace-generator", spec.name)
        self._user_cache: Dict[int, List[Tuple[GroupInstance, float]]] = {}
        self._kernel_cache: Dict[Tuple[int, int], List[Tuple[GroupInstance, float]]] = {}

    # -- instance lookup with caching -------------------------------------------

    def _user_instances(self, pid: int) -> List[Tuple[GroupInstance, float]]:
        cached = self._user_cache.get(pid)
        if cached is None:
            cached = _normalised(self.spec.instances_for_process(pid))
            self._user_cache[pid] = cached
        return cached

    def _kernel_instances(
        self, cpu: int, pid: int
    ) -> List[Tuple[GroupInstance, float]]:
        key = (cpu, pid)
        cached = self._kernel_cache.get(key)
        if cached is None:
            cached = _normalised(self.spec.kernel_instances_for_cpu(cpu, pid))
            self._kernel_cache[key] = cached
        return cached

    # -- generation ------------------------------------------------------------------

    def generate(self) -> Trace:
        """Produce the full trace (sorted by time)."""
        spec = self.spec
        builder = TraceBuilder(meta=spec)
        quantum = spec.quantum_ns
        quantum_sec = quantum / SEC
        user_budget = spec.user_miss_rate * quantum_sec
        kernel_budget = spec.kernel_miss_rate * quantum_sec
        time = spec.schedule.start_ns
        while time < spec.schedule.end_ns:
            epoch = spec.schedule.at(time)
            span = min(quantum, spec.schedule.end_ns - time)
            scale = span / quantum
            for cpu in sorted(epoch.running):
                pid = epoch.running[cpu]
                self._emit_for_cpu(
                    builder,
                    time,
                    span,
                    cpu,
                    pid,
                    user_budget * scale,
                    self._user_instances(pid),
                    kernel=False,
                )
                self._emit_for_cpu(
                    builder,
                    time,
                    span,
                    cpu,
                    pid,
                    kernel_budget * scale,
                    self._kernel_instances(cpu, pid),
                    kernel=True,
                )
            time += span
        return builder.build(sort=True)

    def _emit_for_cpu(
        self,
        builder: TraceBuilder,
        start_ns: int,
        span_ns: int,
        cpu: int,
        pid: int,
        budget: float,
        instances: List[Tuple[GroupInstance, float]],
        kernel: bool,
    ) -> None:
        """Emit one CPU's misses for one quantum."""
        if budget < 1.0 or not instances:
            return
        rng = self._rng
        # De-phase CPUs within the quantum so their miss bursts (and hence
        # their pager interrupts) do not all land at the quantum start.
        cpu_phase = (cpu % 8) * (span_ns // 16)
        for inst, share in instances:
            group = inst.spec
            group_weight = int(round(budget * share))
            if group_weight <= 0:
                continue
            # Hot picks carry ``hot_weight`` of the group's misses over a
            # small hot set (these are the pages that can cross the
            # trigger threshold); cold picks spread the remainder thinly —
            # an individual cold touch must stay well below the trigger.
            hot_n = max(1, int(round(group.hot_fraction * inst.n_pages)))
            k_hot = min(group.pages_per_quantum, inst.n_pages)
            k_cold = k_hot if inst.n_pages > hot_n else 0
            hot_pages = self._pick(inst.first_page, hot_n, k_hot, rng)
            hot_budget = int(round(group_weight * group.hot_weight))
            picks = [(page, True) for page in hot_pages]
            if k_cold:
                cold_pages = self._pick(inst.first_page, inst.n_pages, k_cold, rng)
                cold_budget = group_weight - hot_budget
                picks.extend(
                    (page, False) for page in cold_pages if page not in hot_pages
                )
            else:
                cold_budget = 0
                hot_budget = group_weight
            n_hot = sum(1 for _, is_hot in picks if is_hot)
            n_cold = len(picks) - n_hot
            step = max(1, span_ns // (len(picks) + 1))
            for j, (page, is_hot) in enumerate(picks):
                if is_hot:
                    weight = hot_budget // max(n_hot, 1)
                else:
                    weight = cold_budget // max(n_cold, 1)
                if weight <= 0:
                    continue
                when = start_ns + (j * step + cpu_phase) % span_ns
                writes = self._write_weight(weight, group.write_fraction, rng)
                reads = weight - writes
                if reads > 0:
                    builder.append(
                        when,
                        cpu,
                        pid,
                        page,
                        weight=reads,
                        is_write=False,
                        is_instr=group.is_instr,
                        is_kernel=kernel,
                    )
                if writes > 0:
                    builder.append(
                        when + 1,
                        cpu,
                        pid,
                        page,
                        weight=writes,
                        is_write=True,
                        is_instr=group.is_instr,
                        is_kernel=kernel,
                    )

    @staticmethod
    def _pick(
        first_page: int, range_pages: int, k: int, rng: np.random.Generator
    ) -> List[int]:
        """``k`` draws (deduplicated) from the first ``range_pages`` pages."""
        if k <= 0:
            return []
        offsets = rng.integers(0, range_pages, size=min(k, range_pages))
        return sorted({first_page + int(o) for o in offsets})

    @staticmethod
    def _write_weight(
        weight: int, write_fraction: float, rng: np.random.Generator
    ) -> int:
        """Integer write weight with exact expectation ``weight * fraction``."""
        if write_fraction <= 0.0:
            return 0
        expected = weight * write_fraction
        writes = int(expected)
        if rng.random() < expected - writes:
            writes += 1
        return min(writes, weight)


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Convenience wrapper: synthesise the trace for ``spec``."""
    return TraceGenerator(spec).generate()


def scaled_duration(base_duration_ns: int, scale: float) -> int:
    """Scale a workload duration, keeping it positive."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    return max(int(base_duration_ns * scale), 1_000_000)

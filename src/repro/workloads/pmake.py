"""The multiprogrammed software-development workload (parallel Pmake).

Paper characterisation: four Pmake jobs each compiling gnuchess with
four-way parallelism; I/O intensive with many small short-lived processes
(compilers, linkers); 73.7 MB footprint, 22 % idle, and — uniquely — the
bulk of the stall is in the *kernel* (44 % kernel time; kernel data stall
29.3 % of non-idle).

Section 8.2 uses this workload's kernel miss trace to ask whether the
kernel itself would benefit from migration/replication.  The published
answer, which this spec is built to reproduce:

* per-CPU structures (PDA, kernel stacks, local PFDs) carry most kernel
  misses and have natural first-touch affinity — FT is already right;
* shared kernel data is write-shared — nothing helps;
* kernel code is replicable but only ~12 % of the misses;
* per-process structures (u-areas, page tables) could migrate a little.
"""

from __future__ import annotations

from typing import List

from repro.common.units import ms, sec
from repro.kernel.sched.affinity import AffinityScheduler
from repro.kernel.sched.process import Process
from repro.workloads.base import scaled_duration
from repro.workloads.spec import PageGroupSpec, SharingClass, WorkloadSpec

#: Wall-clock duration at scale 1.0 (cumulative CPU time 35.27 s over 8 CPUs).
BASE_DURATION_NS = sec(35.27 / 8)

N_CPUS = 8
N_JOBS = 4
PROCS_PER_JOB = 12     # short-lived compiles spawned over the run
PARALLELISM = 4        # concurrently alive per job


def _processes(duration: int) -> List[Process]:
    """Short-lived compile processes, ``PARALLELISM`` alive per job."""
    processes = []
    pid = 0
    waves = PROCS_PER_JOB // PARALLELISM
    for job in range(N_JOBS):
        for wave in range(waves):
            start = int(duration * wave / waves)
            end = int(duration * (wave + 1) / waves)
            for slot in range(PARALLELISM):
                processes.append(
                    Process(
                        pid=pid,
                        name=f"cc.{job}.{wave}.{slot}",
                        job=f"pmake.{job}",
                        arrival_ns=start,
                        departure_ns=end,
                    )
                )
                pid += 1
    return processes


def build(scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Construct the pmake workload spec."""
    duration = scaled_duration(BASE_DURATION_NS, scale)
    processes = _processes(duration)
    scheduler = AffinityScheduler(
        n_cpus=N_CPUS,
        quantum_ns=ms(20),
        duty_cycle=0.42,           # heavy I/O blocking -> ~22 % idle
        rebalance_probability=0.08,
        seed=seed,
    )
    schedule = scheduler.build(processes, duration)
    groups = [
        PageGroupSpec(
            name="compiler-code",
            sharing=SharingClass.CODE,
            n_pages=180,
            miss_share=0.45,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=5,
            hot_fraction=0.30,
            hot_weight=0.85,
            touches_per_miss=40.0,
            tlb_factor=0.01,
        ),
        PageGroupSpec(
            name="compile-private",
            sharing=SharingClass.PRIVATE,
            n_pages=50,
            miss_share=0.55,
            write_fraction=0.30,
            pages_per_quantum=6,
            hot_fraction=0.30,
            tlb_factor=0.30,
        ),
        # -- kernel: the focus of Section 8.2 --------------------------------
        PageGroupSpec(
            name="kernel-percpu",
            sharing=SharingClass.KERNEL_PERCPU,
            n_pages=80,
            miss_share=0.50,
            write_fraction=0.35,
            pages_per_quantum=6,
            hot_fraction=0.40,
            tlb_factor=0.40,
        ),
        PageGroupSpec(
            name="kernel-shared",
            sharing=SharingClass.KERNEL_SHARED,
            n_pages=12000,          # buffer cache and VM structures
            miss_share=0.30,
            write_fraction=0.45,
            pages_per_quantum=10,
            hot_fraction=0.01,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="kernel-code",
            sharing=SharingClass.KERNEL_CODE,
            n_pages=200,
            miss_share=0.12,        # the paper's ~12 % of kernel misses
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=5,
            hot_fraction=0.30,
            hot_weight=0.85,
            tlb_factor=0.02,
        ),
        PageGroupSpec(
            name="kernel-process",
            sharing=SharingClass.KERNEL_PROCESS,
            n_pages=10,
            miss_share=0.08,
            write_fraction=0.30,
            pages_per_quantum=3,
            hot_fraction=0.50,
            tlb_factor=0.40,
        ),
    ]
    return WorkloadSpec(
        name="pmake",
        n_cpus=N_CPUS,
        n_nodes=N_CPUS,
        duration_ns=duration,
        quantum_ns=ms(10),
        user_miss_rate=160_000.0,
        kernel_miss_rate=420_000.0,
        compute_time_ns=int(schedule.busy_time_ns() * 0.54),
        groups=groups,
        processes=processes,
        schedule=schedule,
        seed=seed,
        scale=scale,
        frames_per_node=4096,
    )

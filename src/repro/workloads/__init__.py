"""Synthetic analogues of the paper's five workloads (Table 2).

``load_workload`` is the main entry point; it builds the spec, generates
the trace, and caches the pair so benches sharing a workload don't pay for
generation twice.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ConfigurationError
from repro.trace.record import Trace
from repro.workloads import database, engineering, pmake, raytrace, splash
from repro.workloads.base import TraceGenerator, generate_trace
from repro.workloads.spec import (
    GroupInstance,
    PageGroupSpec,
    SharingClass,
    WorkloadSpec,
)

_BUILDERS = {
    "engineering": engineering.build,
    "raytrace": raytrace.build,
    "splash": splash.build,
    "database": database.build,
    "pmake": pmake.build,
}

WORKLOAD_NAMES = tuple(_BUILDERS)

_cache: Dict[Tuple[str, float, int], Tuple[WorkloadSpec, Trace]] = {}


def build_spec(name: str, scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Build the spec for a named workload."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; pick one of {sorted(_BUILDERS)}"
        )
    return builder(scale=scale, seed=seed)


def load_workload(
    name: str, scale: float = 1.0, seed: int = 0
) -> Tuple[WorkloadSpec, Trace]:
    """(spec, trace) for a named workload, cached per (name, scale, seed)."""
    key = (name, float(scale), int(seed))
    cached = _cache.get(key)
    if cached is None:
        spec = build_spec(name, scale=scale, seed=seed)
        cached = _cache[key] = (spec, generate_trace(spec))
    return cached


def clear_cache() -> None:
    """Drop all cached workloads (tests use this to bound memory)."""
    _cache.clear()


__all__ = [
    "WORKLOAD_NAMES",
    "build_spec",
    "load_workload",
    "clear_cache",
    "generate_trace",
    "TraceGenerator",
    "GroupInstance",
    "PageGroupSpec",
    "SharingClass",
    "WorkloadSpec",
]

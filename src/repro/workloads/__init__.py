"""Synthetic analogues of the paper's five workloads (Table 2).

``load_workload`` is the main entry point; it builds the spec (cheap)
and produces the trace through the :mod:`repro.store` trace store —
record once, replay many.  The first load of a (name, scale, seed)
triple under a given generator code version generates the trace and
records it as a compressed container; every later load, in any
process, replays the recording instead of regenerating.  An in-memory
memo on top keeps repeat loads within one process free.

Set ``REPRO_TRACE_STORE=0`` to disable the store (every cold load then
regenerates in-process, the pre-store behaviour) and
``REPRO_TRACE_DIR`` to relocate it; see ``docs/TRACESTORE.md``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ConfigurationError
from repro.trace.record import Trace
from repro.workloads import database, engineering, pmake, raytrace, splash
from repro.workloads.base import TraceGenerator, generate_trace
from repro.workloads.spec import (
    GroupInstance,
    PageGroupSpec,
    SharingClass,
    WorkloadSpec,
)

#: Sentinel distinguishing "use the default store" from "no store".
_DEFAULT = object()

_BUILDERS = {
    "engineering": engineering.build,
    "raytrace": raytrace.build,
    "splash": splash.build,
    "database": database.build,
    "pmake": pmake.build,
}

WORKLOAD_NAMES = tuple(_BUILDERS)

_cache: Dict[Tuple[str, float, int], Tuple[WorkloadSpec, Trace]] = {}


def build_spec(name: str, scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Build the spec for a named workload."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown workload {name!r}; pick one of {sorted(_BUILDERS)}"
        )
    return builder(scale=scale, seed=seed)


def trace_for(spec: WorkloadSpec, store=_DEFAULT) -> Trace:
    """The trace for ``spec``: replayed from the store, else generated.

    On a store miss the freshly generated trace is recorded before it
    is returned, so the next caller — this process or any other —
    replays it.  ``store=None`` bypasses the store entirely.
    """
    if store is _DEFAULT:
        from repro.store import default_store

        store = default_store()
    if store is None:
        return generate_trace(spec)
    return store.get_or_record(
        spec.identity(), lambda: generate_trace(spec), meta=spec
    )


def record_workload(
    name: str, scale: float = 1.0, seed: int = 0, store=_DEFAULT
) -> Tuple[WorkloadSpec, bool]:
    """Ensure a workload's trace is recorded; (spec, was_already_recorded).

    Unlike :func:`load_workload` this does not populate the in-memory
    memo and does not keep the trace alive, so a sweep driver can
    record many workloads once each without holding them all.
    """
    if store is _DEFAULT:
        from repro.store import default_store

        store = default_store()
    spec = build_spec(name, scale=scale, seed=seed)
    if store is None:
        return spec, False
    if store.contains(spec.identity()):
        return spec, True
    store.put(spec.identity(), generate_trace(spec))
    return spec, False


def load_workload(
    name: str, scale: float = 1.0, seed: int = 0, store=_DEFAULT
) -> Tuple[WorkloadSpec, Trace]:
    """(spec, trace) for a named workload, cached per (name, scale, seed).

    The trace comes from the shared :class:`repro.store.TraceStore`
    (replay) when a recording exists for this generator code version,
    and is generated and recorded otherwise; pass ``store=None`` to
    force in-process generation.
    """
    key = (name, float(scale), int(seed))
    cached = _cache.get(key)
    if cached is None:
        spec = build_spec(name, scale=scale, seed=seed)
        cached = _cache[key] = (spec, trace_for(spec, store=store))
    return cached


def clear_cache() -> None:
    """Drop all cached workloads (tests use this to bound memory)."""
    _cache.clear()


__all__ = [
    "WORKLOAD_NAMES",
    "build_spec",
    "load_workload",
    "trace_for",
    "record_workload",
    "clear_cache",
    "generate_trace",
    "TraceGenerator",
    "GroupInstance",
    "PageGroupSpec",
    "SharingClass",
    "WorkloadSpec",
]

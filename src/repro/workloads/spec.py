"""Workload specifications: page groups, sharing classes, calibration.

Section 3.1 of the paper classifies pages into three groups by access
pattern — accessed by one process (migration candidates), read-shared by
many (replication candidates), and write-shared by many (neither) — and
Section 6 characterises five workloads by how their miss traffic spreads
over those classes.  A :class:`WorkloadSpec` describes a synthetic
workload in exactly those terms: a set of :class:`PageGroupSpec` entries,
a miss-rate calibration, and a schedule.

The structural knobs per group:

``miss_share``
    Fraction of the owning scope's (user or kernel) miss budget.
``write_fraction``
    Fraction of the group's miss weight that is writes — the dial that
    sets read-chain lengths (Figure 4) and write-shared robustness.
``pages_per_quantum`` / ``hot_fraction`` / ``hot_weight``
    Concentration of misses over the group's pages; these decide which
    pages cross the trigger threshold within a reset interval.
``touches_per_miss`` / ``tlb_factor``
    How the page-grain access stream relates to the miss stream; these
    drive the TLB-miss derivation of Section 8.3 (code pages have huge
    cache-miss counts but tiny TLB-miss counts, which is why TLB misses
    are an inconsistent policy metric).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import MB, PAGE_SIZE, SEC
from repro.kernel.sched.process import Process, Schedule


class SharingClass(enum.Enum):
    """The paper's page-access taxonomy (Section 3.1) plus kernel classes."""

    PRIVATE = "private"                  # one process; migration candidate
    READ_SHARED = "read-shared"          # many readers; replication candidate
    WRITE_SHARED = "write-shared"        # fine-grain updates; move nothing
    CODE = "code"                        # shared text; replication candidate
    KERNEL_PERCPU = "kernel-percpu"      # PDA, kernel stacks, local PFDs
    KERNEL_SHARED = "kernel-shared"      # shared kernel data, write-shared
    KERNEL_CODE = "kernel-code"          # kernel text (~12 % of pmake misses)
    KERNEL_PROCESS = "kernel-process"    # page tables, u-areas (per process)


#: Sharing classes instantiated once per process.
PER_PROCESS_CLASSES = frozenset(
    {SharingClass.PRIVATE, SharingClass.KERNEL_PROCESS}
)
#: Sharing classes instantiated once per CPU.
PER_CPU_CLASSES = frozenset({SharingClass.KERNEL_PERCPU})
#: Kernel-mode classes.
KERNEL_CLASSES = frozenset(
    {
        SharingClass.KERNEL_PERCPU,
        SharingClass.KERNEL_SHARED,
        SharingClass.KERNEL_CODE,
        SharingClass.KERNEL_PROCESS,
    }
)


@dataclass(frozen=True)
class PageGroupSpec:
    """One class of pages with homogeneous access behaviour."""

    name: str
    sharing: SharingClass
    n_pages: int
    miss_share: float
    write_fraction: float = 0.0
    is_instr: bool = False
    pages_per_quantum: int = 8
    hot_fraction: float = 0.25
    hot_weight: float = 0.8
    touches_per_miss: float = 10.0
    tlb_factor: float = 0.3
    accessors: Optional[Tuple[int, ...]] = None   # restrict to these pids

    def __post_init__(self) -> None:
        if self.n_pages <= 0:
            raise ConfigurationError(f"group {self.name}: needs pages")
        if not 0.0 <= self.miss_share <= 1.0:
            raise ConfigurationError(f"group {self.name}: bad miss share")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(f"group {self.name}: bad write fraction")
        if self.pages_per_quantum <= 0:
            raise ConfigurationError(f"group {self.name}: bad pages/quantum")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError(f"group {self.name}: bad hot fraction")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ConfigurationError(f"group {self.name}: bad hot weight")
        if self.tlb_factor < 0:
            raise ConfigurationError(f"group {self.name}: bad tlb factor")

    @property
    def is_kernel(self) -> bool:
        """True for kernel-mode groups."""
        return self.sharing in KERNEL_CLASSES

    @property
    def per_process(self) -> bool:
        """True when the group is instantiated per process."""
        return self.sharing in PER_PROCESS_CLASSES

    @property
    def per_cpu(self) -> bool:
        """True when the group is instantiated per CPU."""
        return self.sharing in PER_CPU_CLASSES


@dataclass(frozen=True)
class GroupInstance:
    """A concrete page range owned by (group, owner)."""

    spec: PageGroupSpec
    owner: Optional[int]        # pid for per-process, cpu for per-cpu, None shared
    first_page: int
    n_pages: int

    @property
    def last_page(self) -> int:
        """Highest page id in the range (inclusive)."""
        return self.first_page + self.n_pages - 1

    def contains(self, page: int) -> bool:
        """True when ``page`` belongs to this instance."""
        return self.first_page <= page <= self.last_page


@dataclass
class WorkloadSpec:
    """Everything needed to synthesise and evaluate one workload."""

    name: str
    n_cpus: int
    n_nodes: int
    duration_ns: int
    quantum_ns: int
    user_miss_rate: float           # user misses per busy-CPU-second
    kernel_miss_rate: float         # kernel misses per busy-CPU-second
    compute_time_ns: int            # cumulative busy CPU time minus stall
    groups: List[PageGroupSpec]
    processes: List[Process]
    schedule: Schedule
    seed: int = 0
    scale: float = 1.0              # fraction of the paper's run length
    frames_per_node: Optional[int] = None   # full-system memory sizing
    instances: List[GroupInstance] = field(default_factory=list)
    _range_starts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration_ns <= 0 or self.quantum_ns <= 0:
            raise ConfigurationError("duration and quantum must be positive")
        if self.user_miss_rate < 0 or self.kernel_miss_rate < 0:
            raise ConfigurationError("miss rates must be non-negative")
        user = [g for g in self.groups if not g.is_kernel]
        kernel = [g for g in self.groups if g.is_kernel]
        for scope, members in (("user", user), ("kernel", kernel)):
            total = sum(g.miss_share for g in members)
            if members and total <= 0:
                raise ConfigurationError(
                    f"{self.name}: {scope} miss shares must sum to > 0"
                )
        # Shares are normalised per process at generation time, so groups
        # restricted to subsets of processes (via ``accessors``) compose
        # naturally; the absolute values only set relative intensity.
        if not self.instances:
            self._build_instances()
        self._range_starts = [inst.first_page for inst in self.instances]

    # -- page-range layout -----------------------------------------------------

    def _build_instances(self) -> None:
        next_page = 0
        for group in self.groups:
            owners: Sequence[Optional[int]]
            if group.per_process:
                pids = (
                    group.accessors
                    if group.accessors is not None
                    else tuple(p.pid for p in self.processes)
                )
                owners = list(pids)
            elif group.per_cpu:
                owners = list(range(self.n_cpus))
            else:
                owners = [None]
            for owner in owners:
                self.instances.append(
                    GroupInstance(
                        spec=group,
                        owner=owner,
                        first_page=next_page,
                        n_pages=group.n_pages,
                    )
                )
                next_page += group.n_pages

    # -- lookups --------------------------------------------------------------------

    @property
    def total_pages(self) -> int:
        """Distinct logical pages across all instances."""
        return sum(inst.n_pages for inst in self.instances)

    @property
    def memory_bytes(self) -> int:
        """Base (unreplicated) memory footprint."""
        return self.total_pages * PAGE_SIZE

    @property
    def memory_mb(self) -> float:
        """Footprint in megabytes, for Table 3."""
        return self.memory_bytes / MB

    def instance_of_page(self, page: int) -> GroupInstance:
        """The group instance owning ``page``."""
        index = bisect.bisect_right(self._range_starts, page) - 1
        if index < 0:
            raise ConfigurationError(f"page {page} below first range")
        inst = self.instances[index]
        if not inst.contains(page):
            raise ConfigurationError(f"page {page} outside every range")
        return inst

    def group_of_page(self, page: int) -> PageGroupSpec:
        """The group spec owning ``page``."""
        return self.instance_of_page(page).spec

    def instances_for_process(self, pid: int) -> List[GroupInstance]:
        """User-mode instances a process touches."""
        result = []
        for inst in self.instances:
            group = inst.spec
            if group.is_kernel:
                continue
            if group.per_process:
                if inst.owner == pid:
                    result.append(inst)
            elif group.accessors is None or pid in group.accessors:
                result.append(inst)
        return result

    def kernel_instances_for_cpu(self, cpu: int, pid: int) -> List[GroupInstance]:
        """Kernel-mode instances touched while ``pid`` runs on ``cpu``."""
        result = []
        for inst in self.instances:
            group = inst.spec
            if not group.is_kernel:
                continue
            if group.per_cpu:
                if inst.owner == cpu:
                    result.append(inst)
            elif group.per_process:
                if inst.owner == pid:
                    result.append(inst)
            else:
                result.append(inst)
        return result

    # -- calibration summaries ----------------------------------------------------------

    @property
    def wall_time_sec(self) -> float:
        """Wall-clock duration of the run."""
        return self.duration_ns / SEC

    def idle_time_ns(self) -> int:
        """Cumulative CPU idle time (from the schedule)."""
        return self.schedule.idle_time_ns()

    def busy_time_ns(self) -> int:
        """Cumulative CPU busy time (from the schedule)."""
        return self.schedule.busy_time_ns()

    def expected_user_misses(self) -> float:
        """Approximate total user misses the generator will emit."""
        return self.user_miss_rate * self.busy_time_ns() / SEC

    def expected_kernel_misses(self) -> float:
        """Approximate total kernel misses the generator will emit."""
        return self.kernel_miss_rate * self.busy_time_ns() / SEC

    def identity(self) -> Dict[str, object]:
        """The canonical (name, scale, seed) triple naming this workload.

        A named workload's spec and trace are fully determined by this
        triple plus the generator code version, which is exactly what the
        :mod:`repro.store` trace store keys containers on.
        """
        return {
            "name": self.name,
            "scale": float(self.scale),
            "seed": int(self.seed),
        }

    def tlb_factor_of_page(self, page: int) -> float:
        """TLB-derivation factor for ``page`` (see :mod:`repro.trace.tlbsim`)."""
        return self.group_of_page(page).tlb_factor

    def describe(self) -> Dict[str, object]:
        """A short structural summary (used by Table 2's bench)."""
        return {
            "name": self.name,
            "cpus": self.n_cpus,
            "processes": len(self.processes),
            "pages": self.total_pages,
            "memory_mb": round(self.memory_mb, 1),
            "groups": [g.name for g in self.groups],
            "wall_sec": round(self.wall_time_sec, 3),
        }

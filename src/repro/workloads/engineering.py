"""The multiprogrammed engineering workload (6 Flashlite + 6 VCS).

Paper characterisation (Tables 2/3, Section 6): twelve large sequential
compute- and memory-intensive applications, UNIX priority scheduling with
affinity, 27.5 MB footprint, 20 % idle, 74 % user / 6 % kernel time, and a
very large user stall (34.4 % instruction + 37.4 % data of non-idle time —
VCS compiles the simulated circuit into a huge code segment).

Structure that matters to the policy:

* each process's *data* is private — when the scheduler moves the process,
  those pages strand remotely and only migration recovers them;
* the six instances of each application share one *code* segment — hot
  code pages are read-shared by up to six processes and only replication
  makes them local everywhere;
* code pages have an enormous cache-miss-to-TLB-miss ratio (tight loops in
  a segment far larger than the L2), which is why TLB-driven policies fail
  on this workload (Figure 8).
"""

from __future__ import annotations

from repro.common.units import ms, sec
from repro.kernel.sched.affinity import AffinityScheduler
from repro.kernel.sched.process import Process
from repro.workloads.base import scaled_duration
from repro.workloads.spec import PageGroupSpec, SharingClass, WorkloadSpec

#: Wall-clock duration at scale 1.0 (cumulative CPU time 61.76 s over 8 CPUs).
BASE_DURATION_NS = sec(61.76 / 8)

N_CPUS = 8
N_VCS = 6
N_FLASHLITE = 6


def build(scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Construct the engineering workload spec."""
    duration = scaled_duration(BASE_DURATION_NS, scale)
    vcs_pids = tuple(range(N_VCS))
    flashlite_pids = tuple(range(N_VCS, N_VCS + N_FLASHLITE))
    processes = [Process(pid=p, name=f"vcs.{p}", job="vcs") for p in vcs_pids]
    processes += [
        Process(pid=p, name=f"flashlite.{p - N_VCS}", job="flashlite")
        for p in flashlite_pids
    ]
    scheduler = AffinityScheduler(
        n_cpus=N_CPUS,
        quantum_ns=ms(20),
        duty_cycle=0.58,           # 12 procs * 0.58 ~ 7 runnable -> ~20 % idle
        rebalance_probability=0.04,
        seed=seed,
    )
    schedule = scheduler.build(processes, duration)
    groups = [
        PageGroupSpec(
            name="vcs-code",
            sharing=SharingClass.CODE,
            n_pages=420,
            miss_share=0.48,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=8,
            hot_fraction=0.22,
            hot_weight=0.92,
            touches_per_miss=40.0,
            tlb_factor=0.01,
            accessors=vcs_pids,
        ),
        PageGroupSpec(
            name="flashlite-code",
            sharing=SharingClass.CODE,
            n_pages=160,
            miss_share=0.48,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=7,
            hot_fraction=0.30,
            hot_weight=0.92,
            touches_per_miss=40.0,
            tlb_factor=0.01,
            accessors=flashlite_pids,
        ),
        PageGroupSpec(
            name="private-data",
            sharing=SharingClass.PRIVATE,
            n_pages=440,
            miss_share=0.52,
            write_fraction=0.25,
            pages_per_quantum=10,
            hot_fraction=0.12,
            hot_weight=0.92,
            touches_per_miss=8.0,
            tlb_factor=0.30,
        ),
        PageGroupSpec(
            name="kernel-percpu",
            sharing=SharingClass.KERNEL_PERCPU,
            n_pages=40,
            miss_share=0.60,
            write_fraction=0.30,
            pages_per_quantum=5,
            hot_fraction=0.4,
            tlb_factor=0.40,
        ),
        PageGroupSpec(
            name="kernel-shared",
            sharing=SharingClass.KERNEL_SHARED,
            n_pages=120,
            miss_share=0.25,
            write_fraction=0.45,
            pages_per_quantum=4,
            hot_fraction=0.4,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="kernel-code",
            sharing=SharingClass.KERNEL_CODE,
            n_pages=120,
            miss_share=0.15,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            hot_fraction=0.3,
            tlb_factor=0.02,
        ),
    ]
    spec = WorkloadSpec(
        name="engineering",
        n_cpus=N_CPUS,
        n_nodes=N_CPUS,
        duration_ns=duration,
        quantum_ns=ms(10),
        user_miss_rate=750_000.0,
        kernel_miss_rate=60_000.0,
        compute_time_ns=int(schedule.busy_time_ns() * 0.228),
        groups=groups,
        processes=processes,
        schedule=schedule,
        seed=seed,
        scale=scale,
        frames_per_node=1400,      # 5.5 MB/node: tight enough for some
    )                              # allocation failures (Table 4: 6 %)
    return spec

"""The single-parallel-application workload (SPLASH Raytrace).

Paper characterisation: one compute-intensive parallel renderer whose
worker processes are *locked to processors*; 28.8 MB footprint, 6 % idle,
69 % user / 25 % kernel time, user data stall 36.1 % of non-idle.

Structure that matters to the policy:

* the scene database is a large structure read by every worker with
  essentially no writes — 60 % of the workload's data misses sit in read
  chains of 512+ misses (Figure 4), so replication is where the win is;
* processes never move, so migration contributes almost nothing
  (Figure 6's Migr bar for raytrace is flat);
* a small task queue is write-shared and must be left alone.
"""

from __future__ import annotations

from repro.common.units import ms, sec
from repro.kernel.sched.pinned import PinnedScheduler
from repro.kernel.sched.process import Process
from repro.workloads.base import scaled_duration
from repro.workloads.spec import PageGroupSpec, SharingClass, WorkloadSpec

#: Wall-clock duration at scale 1.0 (cumulative CPU time 74.08 s over 8 CPUs).
BASE_DURATION_NS = sec(74.08 / 8)

N_CPUS = 8


def build(scale: float = 1.0, seed: int = 0) -> WorkloadSpec:
    """Construct the raytrace workload spec."""
    duration = scaled_duration(BASE_DURATION_NS, scale)
    processes = [
        Process(pid=p, name=f"raytrace.{p}", job="raytrace")
        for p in range(N_CPUS)
    ]
    scheduler = PinnedScheduler(n_cpus=N_CPUS, duty_cycle=0.94, seed=seed)
    schedule = scheduler.build(processes, duration, quantum_ns=ms(20))
    groups = [
        PageGroupSpec(
            name="scene",
            sharing=SharingClass.READ_SHARED,
            n_pages=4600,
            miss_share=0.62,
            write_fraction=0.0,
            pages_per_quantum=10,
            hot_fraction=0.025,
            hot_weight=0.85,
            touches_per_miss=6.0,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="rays-private",
            sharing=SharingClass.PRIVATE,
            n_pages=140,
            miss_share=0.20,
            write_fraction=0.30,
            pages_per_quantum=6,
            hot_fraction=0.30,
            tlb_factor=0.30,
        ),
        PageGroupSpec(
            name="task-queue",
            sharing=SharingClass.WRITE_SHARED,
            n_pages=24,
            miss_share=0.08,
            write_fraction=0.45,
            pages_per_quantum=4,
            hot_fraction=0.50,
            tlb_factor=0.60,
        ),
        PageGroupSpec(
            name="code",
            sharing=SharingClass.CODE,
            n_pages=110,
            miss_share=0.10,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=5,
            hot_fraction=0.30,
            hot_weight=0.85,
            touches_per_miss=40.0,
            tlb_factor=0.01,
        ),
        PageGroupSpec(
            name="kernel-percpu",
            sharing=SharingClass.KERNEL_PERCPU,
            n_pages=50,
            miss_share=0.50,
            write_fraction=0.30,
            pages_per_quantum=5,
            hot_fraction=0.4,
            tlb_factor=0.40,
        ),
        PageGroupSpec(
            name="kernel-shared",
            sharing=SharingClass.KERNEL_SHARED,
            n_pages=130,
            miss_share=0.30,
            write_fraction=0.50,
            pages_per_quantum=4,
            hot_fraction=0.4,
            tlb_factor=0.50,
        ),
        PageGroupSpec(
            name="kernel-code",
            sharing=SharingClass.KERNEL_CODE,
            n_pages=90,
            miss_share=0.20,
            write_fraction=0.0,
            is_instr=True,
            pages_per_quantum=4,
            hot_fraction=0.3,
            tlb_factor=0.02,
        ),
    ]
    return WorkloadSpec(
        name="raytrace",
        n_cpus=N_CPUS,
        n_nodes=N_CPUS,
        duration_ns=duration,
        quantum_ns=ms(10),
        user_miss_rate=380_000.0,
        kernel_miss_rate=195_000.0,
        compute_time_ns=int(schedule.busy_time_ns() * 0.404),
        groups=groups,
        processes=processes,
        schedule=schedule,
        seed=seed,
        scale=scale,
        frames_per_node=4096,
    )

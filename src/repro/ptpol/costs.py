"""Page-table operation costs, derived from the kernel cost model.

The PT-replication and co-placement policies (see docs/PTPOLICY.md) pay
for their actions with the same Table 5 step costs the pager pays for
data-page operations — a page table *is* a page, so replicating one
costs an allocation, a copy, a links/mapping pass and a policy-end pass;
propagating a PT write to a replica costs the links-mapping lock hold;
and installing a replica on a node swaps the root pointer under that
node's CPUs, which costs a TLB flush round.

Nothing here is free-standing calibration: every field of
:class:`PtCostModel` is assembled from :class:`KernelCostModel` fields
by :meth:`PtCostModel.from_kernel`, so machine scaling (CC-NOW's
stretched copies and flushes) carries through automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.kernel.pager.costs import KernelCostModel


@dataclass(frozen=True)
class PtCostModel:
    """Per-action page-table policy costs, in nanoseconds."""

    pt_replicate_ns: int
    """One-time cost of building a PT replica on a node: page allocation,
    page copy, replica chaining and the policy-end mapping pass."""

    pt_update_ns: int
    """Cost of propagating one PT write to one replica (the
    links-mapping lock hold); charged per replica per write."""

    pt_shootdown_base_ns: int
    """Base cost of the flush round installing a replica's root pointer."""

    pt_shootdown_per_cpu_ns: int
    """Per-CPU cost of that flush round."""

    thread_migrate_ns: int
    """Cost of re-homing a thread onto its page table's node: the pager
    interrupt, the decision, and a policy-end pass re-pointing the
    scheduler's affinity hint."""

    def __post_init__(self) -> None:
        for name in (
            "pt_replicate_ns", "pt_update_ns", "pt_shootdown_base_ns",
            "pt_shootdown_per_cpu_ns", "thread_migrate_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @classmethod
    def from_kernel(cls, kernel: KernelCostModel) -> "PtCostModel":
        """Assemble the PT action costs from the Table 5 step costs."""
        return cls(
            pt_replicate_ns=(
                kernel.page_alloc_ns
                + kernel.page_copy_ns
                + kernel.links_mapping_repl_ns
                + kernel.policy_end_repl_ns
            ),
            pt_update_ns=kernel.memlock_hold_links_ns,
            pt_shootdown_base_ns=kernel.tlb_flush_base_ns,
            pt_shootdown_per_cpu_ns=kernel.tlb_flush_per_cpu_ns,
            thread_migrate_ns=(
                kernel.interrupt_ns
                + kernel.decision_ns
                + kernel.policy_end_migr_ns
            ),
        )

    def shootdown_ns(self, cpus: int) -> int:
        """Cost of one root-pointer flush round over ``cpus`` CPUs."""
        return self.pt_shootdown_base_ns + self.pt_shootdown_per_cpu_ns * cpus


#: The default model, derived from the default kernel cost model.
DEFAULT_PT_COSTS = PtCostModel.from_kernel(KernelCostModel())

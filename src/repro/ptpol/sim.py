"""Trace-driven replay of the page-table placement policies.

The simulator extends the Section 8 methodology one level down the
address-translation path: besides the data misses the existing policies
fight over, every TLB miss forces a *page-table walk*, and a walk
against a remote page-table page is a dependent chain of remote
references.  PT pages — radix-tree leaves, each mapping
``pt_span_pages`` data pages of the shared address space — are homed
first-touch: on the node whose CPU first faulted a page in their span.
In a parallel workload that is usually one node, so every other node
walks those PT pages remotely; that is the Mitosis problem.  Four
policies replay under the same walk model so their run times compare:

* **PT-FT** — first-touch data placement, PT pages stay where they were
  first faulted (the do-nothing baseline);
* **PT-Migr** — the paper's data-page migration policy on top of the
  same static page tables;
* **PT-Repl** — Mitosis-style page-table replication: a per-(PT page,
  node) remote-walk counter bank (the walk analog of the hot-page miss
  counters) triggers a replica of the walked PT page on the walking
  node;
* **CoPlace** — Phoenix-style co-placement: data migration plus, on a
  walk trigger, a cost-model arbitration between *replicating the PT
  page* onto the thread's node and *re-homing the thread* onto the PT
  page's node — whichever is cheaper under
  :class:`~repro.ptpol.costs.PtCostModel`.

Data-page decisions run through the very same ``_pager_act`` state
machine as the existing dynamic policies, with one twist: the CPU->node
map is a mutable list, so a thread re-homing by the co-placement policy
immediately re-costs that CPU's subsequent misses and walks.  (Threads
are modelled at CPU granularity — the affinity scheduler pins one
runnable thread per CPU in the trace generator, so "migrate the thread
on CPU c" and "re-home CPU c" coincide.)

Replica maintenance is charged, not assumed free: the first fault of a
data page is a PT write (a mapping is created) and propagates to every
standing replica of its PT page at ``pt_update_ns`` each; a data-page
migration rewrites the mapping and propagates the same way; installing
a replica swaps the node's root pointers under a TLB shootdown round.
All of it lands in :class:`~repro.ptpol.state.PtTally`, which must
reconcile exactly with the emitted
:class:`~repro.obs.events.PtReplicate` /
:class:`~repro.obs.events.ThreadMigrate` events
(:func:`~repro.ptpol.state.reconcile_events`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.common.errors import ConfigurationError, TraceError
from repro.obs.events import (
    HotPageTriggered,
    IntervalReset,
    MissServiced,
    PtReplicate,
    ShootdownEvent,
    ThreadMigrate,
)
from repro.policy.parameters import PolicyParameters
from repro.ptpol.costs import DEFAULT_PT_COSTS, PtCostModel
from repro.ptpol.state import PtReplicaTable, PtTally
from repro.trace.policysim import (
    PolicySimResult,
    TracePolicySimulator,
    _pager_act,
)
from repro.trace.record import Trace
from repro.trace.tlbsim import derive_tlb_trace

#: The PT policy family, in presentation order.
PT_POLICIES = ("ptft", "ptmigr", "ptrepl", "coplace")

#: Display labels, keyed by policy token.
PT_POLICY_LABELS = {
    "ptft": "PT-FT",
    "ptmigr": "PT-Migr",
    "ptrepl": "PT-Repl",
    "coplace": "CoPlace",
}


def params_for_pt_policy(policy: str, trigger: int = 128) -> PolicyParameters:
    """The :class:`PolicyParameters` encoding one PT-family policy.

    ``trigger`` is the *data* hot-page trigger; the walk trigger scales
    with it (half, floor 1) because a walk-counter increment stands for
    a burst of TLB misses the same way a weighted miss record stands
    for a burst of cache misses.
    """
    pt_trigger = max(1, trigger // 2)
    if policy == "ptft":
        return PolicyParameters.base(
            trigger_threshold=trigger,
            enable_migration=False,
            enable_replication=False,
            pt_trigger_threshold=pt_trigger,
        )
    if policy == "ptmigr":
        return PolicyParameters.migration_only(
            trigger_threshold=trigger,
            pt_trigger_threshold=pt_trigger,
        )
    if policy == "ptrepl":
        return PolicyParameters.pt_replication(
            trigger_threshold=trigger,
            pt_trigger_threshold=pt_trigger,
        )
    if policy == "coplace":
        return PolicyParameters.co_placement(
            trigger_threshold=trigger,
            pt_trigger_threshold=pt_trigger,
        )
    raise ConfigurationError(
        f"unknown PT policy {policy!r}; expected one of {PT_POLICIES}"
    )


class PtPolicySimulator(TracePolicySimulator):
    """Replay a trace under the page-table placement policies.

    Scalar-only: the PT state machine is stateful per PT page *and* per
    node and has no vectorized twin, so ``engine="vector"`` raises (use
    ``--engine scalar``; ``"auto"`` picks the scalar core here).
    """

    def __init__(
        self,
        config=None,
        tracer=None,
        metrics=None,
        profiler=None,
        costs: Optional[PtCostModel] = None,
    ) -> None:
        super().__init__(
            config=config, tracer=tracer, metrics=metrics, profiler=profiler
        )
        self.costs = costs or DEFAULT_PT_COSTS
        #: Tally of the most recent :meth:`simulate` run.
        self.tally: PtTally = PtTally()
        #: Replica table of the most recent run.
        self.replicas: PtReplicaTable = PtReplicaTable()

    # -- entry point ---------------------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        params: PolicyParameters,
        label: Optional[str] = None,
        driver_trace: Optional[Trace] = None,
    ) -> PolicySimResult:
        """Replay ``trace`` under one PT-family policy.

        ``driver_trace`` is the TLB-miss stream (derived from ``trace``
        when omitted); it both costs walk stall and drives the walk
        counters.  The data-page side of ``params`` behaves exactly as
        in :meth:`simulate_dynamic`.
        """
        cfg = self.config
        if cfg.engine == "vector":
            raise ConfigurationError(
                "the PT policies are scalar-only (stateful per-PT-page "
                "walk counters have no vectorized twin); re-run with "
                "--engine scalar (or REPRO_REPLAY_ENGINE=scalar, or "
                "engine 'auto', which picks the scalar core here)"
            )
        if driver_trace is None:
            driver_trace = derive_tlb_trace(trace, n_cpus=cfg.n_cpus)
        result = PolicySimResult(label=label or self._pt_label(params))
        self._emit_run_meta(result.label, params, pt=True)
        n_events = len(trace) + len(driver_trace)
        with self.profiler.span("replay.ptpol", items=n_events):
            self._replay_pt(trace, driver_trace, params, result)
        if self.metrics is not None:
            self._register_metrics()
        return result

    # -- the replay core -----------------------------------------------------------

    def _replay_pt(
        self,
        trace: Trace,
        driver: Trace,
        params: PolicyParameters,
        result: PolicySimResult,
    ) -> None:
        cfg = self.config
        costs = self.costs
        tally = self.tally = PtTally()
        ptrep = self.replicas = PtReplicaTable()
        # Data-page state, exactly as in _replay_dynamic — except the
        # CPU->node map is a mutable list so thread re-homing sticks.
        from repro.machine.directory import MissCounterBank

        copies: Dict[int, Set[int]] = {}
        bank = MissCounterBank(cfg.n_cpus)
        armed: Set[int] = set()
        cpu_node = [cfg.node_of_cpu(c) for c in range(cfg.n_cpus)]
        cpus_per_node = cfg.n_cpus // cfg.n_nodes
        span = cfg.pt_span_pages
        local_ns, remote_ns = cfg.local_ns, cfg.remote_ns
        walk_local_ns = cfg.pt_walk_local_ns
        walk_remote_ns = cfg.pt_walk_remote_ns
        op_cost = cfg.op_cost_ns
        data_dynamic = params.enable_migration or params.enable_replication
        pt_dynamic = params.enable_pt_replication
        coplace = params.enable_thread_migration
        trigger = params.trigger_threshold
        pt_trigger = params.pt_trigger_threshold
        next_reset = params.reset_interval_ns
        interval_index = 0
        local_stall = 0.0
        walk_stall = 0.0
        local_walk_stall = 0.0
        update_cost = 0.0
        shootdown_cost = 0.0
        pending: deque = deque()     # (due, page, cpu) data hot pages
        pt_pending: deque = deque()  # (due, leaf, node, cpu, pid, walks)
        pt_armed: Set[Tuple[int, int]] = set()
        walk_bank: Dict[Tuple[int, int], int] = {}  # (leaf, node) -> walks
        # Per-interval demand/maintenance state for the arbitration.
        data_demand: Dict[Tuple[int, int], int] = {}  # (pid, serving node)
        leaf_writes: Dict[int, int] = {}              # leaf -> PT writes
        thread_moves: Dict[int, int] = {}             # pid -> re-homings
        mapped: Set[int] = set()                      # data pages with a PTE
        tracer = self.tracer
        trace_on = tracer.active
        emit_miss = tracer.wants(MissServiced.KIND)

        def pt_write(leaf: int) -> None:
            """Charge a PT write's propagation to every standing replica.

            Counted in ``leaf_writes`` even when no replica stands yet —
            that running count is what the arbitration uses to estimate
            the propagation tax a *new* replica would start paying.
            """
            nonlocal update_cost
            leaf_writes[leaf] = leaf_writes.get(leaf, 0) + 1
            replicas = ptrep.replica_count(leaf) - 1
            if replicas <= 0:
                return
            cost = replicas * costs.pt_update_ns
            result.overhead_ns += cost
            update_cost += cost
            tally.pt_updates += replicas

        def act(now: int, page: int, cpu: int) -> None:
            before = result.migrations
            _pager_act(
                now, page, cpu, copies, bank, armed, result, params,
                cpu_node, op_cost, tracer, trace_on,
            )
            if result.migrations > before:
                # A migration rewrites the page's mapping: the write
                # propagates to every replica of its PT page.
                pt_write(page // span)

        def pt_act(
            now: int, leaf: int, node: int, cpu: int, pid: int, walks: int
        ) -> None:
            """Resolve one walk trigger: replicate the PT page or move
            the thread."""
            nonlocal shootdown_cost
            pt_armed.discard((leaf, node))
            if ptrep.holds(leaf, node):
                return  # raced: the node gained a replica while pending
            home = ptrep.home_of(leaf)
            reason = "walk-trigger"
            if coplace:
                tally.arbitrations += 1
                # Price the alternatives over the current interval's
                # demand, keyed by *serving* node.  Re-homing the
                # thread makes its walks of this PT page local for free
                # and flips its data locality: misses served from the
                # PT page's home node turn local, misses served from
                # the thread's current node turn remote — so the data
                # term can be a net benefit (a negative cost) when the
                # thread's data already lives with its page table.
                # Replication makes walks local at a construction +
                # flush cost plus the standing per-write propagation
                # tax observed on this PT page so far this interval.
                served_here = data_demand.get((pid, node), 0)
                served_home = data_demand.get((pid, home), 0)
                thread_cost = costs.thread_migrate_ns + (
                    (served_here - served_home) * (remote_ns - local_ns)
                )
                pt_cost = (
                    costs.pt_replicate_ns
                    + costs.shootdown_ns(cpus_per_node)
                    + leaf_writes.get(leaf, 0) * costs.pt_update_ns
                )
                if (
                    thread_cost < pt_cost
                    and thread_moves.get(pid, 0) < params.max_thread_migrations
                ):
                    thread_moves[pid] = thread_moves.get(pid, 0) + 1
                    cpu_node[cpu] = home
                    result.overhead_ns += costs.thread_migrate_ns
                    tally.thread_migrations += 1
                    if trace_on:
                        tracer.emit(
                            ThreadMigrate(
                                t=now, process=pid, cpu=cpu, src=node,
                                dst=home, reason="cheaper-than-pt-replica",
                                latency_ns=float(costs.thread_migrate_ns),
                            )
                        )
                    return
                reason = "pt-replica-cheaper" if thread_cost >= pt_cost \
                    else "thread-migrations-capped"
            ptrep.add_replica(leaf, node)
            flush = costs.shootdown_ns(cpus_per_node)
            result.overhead_ns += costs.pt_replicate_ns + flush
            shootdown_cost += flush
            tally.pt_replications += 1
            tally.pt_shootdowns += 1
            if trace_on:
                tracer.emit(
                    PtReplicate(
                        t=now, process=pid, cpu=cpu, pt_page=leaf,
                        node=node, src=home, walks=walks, reason=reason,
                        latency_ns=float(costs.pt_replicate_ns),
                    )
                )
                tracer.emit(
                    ShootdownEvent(
                        t=now, origin_cpu=cpu, mode="pt-root",
                        cpus_flushed=cpus_per_node, frames=1,
                        cost_ns=float(flush),
                    )
                )

        def drain(upto: Optional[int]) -> None:
            while pending and (upto is None or pending[0][0] <= upto):
                due, hot_page, hot_cpu = pending.popleft()
                act(due, hot_page, hot_cpu)
            while pt_pending and (upto is None or pt_pending[0][0] <= upto):
                due, leaf, node, cpu, pid, walks = pt_pending.popleft()
                pt_act(due, leaf, node, cpu, pid, walks)

        for time, cpu, pid, page, weight, is_write, is_cost in (
            self._merged_process_events(trace, driver)
        ):
            drain(time)
            if time >= next_reset:
                drain(None)
                if trace_on:
                    tracer.emit(
                        IntervalReset(
                            t=time,
                            index=interval_index,
                            tracked_pages=bank.tracked_pages,
                            triggers=result.hot_events,
                        )
                    )
                interval_index += 1
                bank.reset()
                armed.clear()
                walk_bank.clear()
                pt_armed.clear()
                data_demand.clear()
                leaf_writes.clear()
                thread_moves.clear()
                while next_reset <= time:
                    next_reset += params.reset_interval_ns
            node = cpu_node[cpu]
            leaf = page // span
            ptrep.observe(leaf, node)
            if is_cost:
                # -- a data miss: cost it, then maybe drive the data policy
                page_copies = copies.get(page)
                if page_copies is None:
                    page_copies = copies[page] = {node}
                if page not in mapped:
                    mapped.add(page)
                    pt_write(leaf)  # a new mapping is a PT write
                local = node in page_copies
                result.total_misses += weight
                if local:
                    result.local_misses += weight
                    result.stall_ns += weight * local_ns
                    local_stall += weight * local_ns
                else:
                    result.stall_ns += weight * remote_ns
                if coplace:
                    key = (pid, node if local else min(page_copies))
                    data_demand[key] = data_demand.get(key, 0) + weight
                if emit_miss:
                    tracer.emit(
                        MissServiced(
                            t=time, cpu=cpu, page=page,
                            node=node if local else min(page_copies),
                            weight=weight,
                            latency_ns=float(local_ns if local else remote_ns),
                            remote=not local, process=pid,
                        )
                    )
                if not data_dynamic:
                    continue
                count = bank.record(page, cpu, weight, is_write)
                if count < trigger or page in armed:
                    continue
                if node in page_copies:
                    continue  # hot but already local
                result.hot_events += 1
                armed.add(page)
                if trace_on:
                    tracer.emit(
                        HotPageTriggered(
                            t=time, page=page, cpu=cpu, count=count,
                            threshold=trigger,
                        )
                    )
                pending.append((time + cfg.decision_delay_ns, page, cpu))
            else:
                # -- a TLB miss: every one costs a page-table walk
                walk_local = ptrep.holds(leaf, node)
                tally.walks += weight
                stall = weight * (walk_local_ns if walk_local else walk_remote_ns)
                result.stall_ns += stall
                walk_stall += stall
                if walk_local:
                    tally.local_walks += weight
                    local_walk_stall += stall
                    local_stall += stall
                if emit_miss:
                    tracer.emit(
                        MissServiced(
                            t=time, cpu=cpu, page=page,
                            node=node if walk_local else ptrep.home_of(leaf),
                            weight=weight,
                            latency_ns=float(
                                walk_local_ns if walk_local
                                else walk_remote_ns
                            ),
                            remote=not walk_local, process=pid, walk=True,
                        )
                    )
                if not pt_dynamic or walk_local:
                    continue
                key = (leaf, node)
                count = walk_bank.get(key, 0) + weight
                walk_bank[key] = count
                if count < pt_trigger or key in pt_armed:
                    continue
                tally.walk_triggers += 1
                pt_armed.add(key)
                pt_pending.append(
                    (time + cfg.decision_delay_ns, leaf, node, cpu, pid, count)
                )
        drain(None)
        result.extra["local_stall_ns"] = local_stall
        result.extra["pt_walks"] = float(tally.walks)
        result.extra["pt_local_walks"] = float(tally.local_walks)
        result.extra["pt_walk_stall_ns"] = walk_stall
        result.extra["pt_local_walk_stall_ns"] = local_walk_stall
        result.extra["pt_replications"] = float(tally.pt_replications)
        result.extra["thread_migrations"] = float(tally.thread_migrations)
        result.extra["pt_updates"] = float(tally.pt_updates)
        result.extra["pt_update_cost_ns"] = update_cost
        result.extra["pt_shootdowns"] = float(tally.pt_shootdowns)
        result.extra["pt_shootdown_cost_ns"] = shootdown_cost

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _merged_process_events(cost: Trace, driver: Trace):
        """Merge data misses and walks in time order, with processes.

        The PT twin of ``_merged_events``: driver (walk) events sort
        *after* cost events at equal timestamps, so a PT action never
        retroactively cheapens the walk that triggered it — and since
        every derived TLB record shares a timestamp with the cache-miss
        record that produced it, the first sighting of a page is always
        the data miss that faults its mapping in.
        """
        if cost.meta is not driver.meta and cost.meta is not None:
            if driver.meta is not None and cost.meta.name != driver.meta.name:
                raise TraceError(
                    "cost and driver traces are from different workloads"
                )
        i = j = 0
        n_cost, n_driver = len(cost), len(driver)
        c_t, d_t = cost.time_ns.tolist(), driver.time_ns.tolist()
        c_c, d_c = cost.cpu.tolist(), driver.cpu.tolist()
        c_pr, d_pr = cost.process.tolist(), driver.process.tolist()
        c_p, d_p = cost.page.tolist(), driver.page.tolist()
        c_wt, d_wt = cost.weight.tolist(), driver.weight.tolist()
        c_w, d_w = cost.is_write.tolist(), driver.is_write.tolist()
        while i < n_cost or j < n_driver:
            take_cost = j >= n_driver or (i < n_cost and c_t[i] <= d_t[j])
            if take_cost:
                yield (c_t[i], c_c[i], c_pr[i], c_p[i], c_wt[i], c_w[i], True)
                i += 1
            else:
                yield (d_t[j], d_c[j], d_pr[j], d_p[j], d_wt[j], d_w[j], False)
                j += 1

    def _register_metrics(self) -> None:
        """Publish the run's tally under the ``ptpol.*`` namespace.

        Callbacks read the live tally, so re-running :meth:`simulate`
        on the same simulator keeps the registry current without
        re-registration (the names are claimed once).
        """
        tally = lambda: self.tally  # noqa: E731 - late-bound current tally
        names = (
            ("ptpol.walks", lambda: float(tally().walks)),
            ("ptpol.local_walks", lambda: float(tally().local_walks)),
            ("ptpol.pt_replications", lambda: float(tally().pt_replications)),
            ("ptpol.thread_migrations",
             lambda: float(tally().thread_migrations)),
            ("ptpol.pt_updates", lambda: float(tally().pt_updates)),
            ("ptpol.pt_shootdowns", lambda: float(tally().pt_shootdowns)),
            ("ptpol.walk_triggers", lambda: float(tally().walk_triggers)),
            ("ptpol.arbitrations", lambda: float(tally().arbitrations)),
        )
        for name, fn in names:
            try:
                self.metrics.register_callback(name, fn)
            except ConfigurationError:
                pass  # already registered by an earlier run

    @staticmethod
    def _pt_label(params: PolicyParameters) -> str:
        if params.enable_thread_migration:
            return PT_POLICY_LABELS["coplace"]
        if params.enable_pt_replication:
            return PT_POLICY_LABELS["ptrepl"]
        if params.enable_migration:
            return PT_POLICY_LABELS["ptmigr"]
        return PT_POLICY_LABELS["ptft"]


def simulate_ptpol(
    trace: Trace,
    policy: str,
    config=None,
    trigger: int = 128,
    tracer=None,
    metrics=None,
    profiler=None,
    costs: Optional[PtCostModel] = None,
    driver_trace: Optional[Trace] = None,
) -> Tuple[PolicySimResult, PtTally]:
    """One-call replay of ``trace`` under PT policy token ``policy``.

    Returns the result alongside the run's :class:`PtTally` (which the
    caller can reconcile against a captured event stream).
    """
    sim = PtPolicySimulator(
        config=config, tracer=tracer, metrics=metrics, profiler=profiler,
        costs=costs,
    )
    params = params_for_pt_policy(policy, trigger=trigger)
    result = sim.simulate(
        trace, params, label=PT_POLICY_LABELS[policy],
        driver_trace=driver_trace,
    )
    return result, sim.tally

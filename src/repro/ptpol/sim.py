"""Trace-driven replay of the page-table placement policies.

The simulator extends the Section 8 methodology one level down the
address-translation path: besides the data misses the existing policies
fight over, every TLB miss forces a *page-table walk*, and a walk
against a remote page-table page is a dependent chain of remote
references.  PT pages — radix-tree leaves, each mapping
``pt_span_pages`` data pages of the shared address space — are homed
first-touch: on the node whose CPU first faulted a page in their span.
In a parallel workload that is usually one node, so every other node
walks those PT pages remotely; that is the Mitosis problem.  Four
policies replay under the same walk model so their run times compare:

* **PT-FT** — first-touch data placement, PT pages stay where they were
  first faulted (the do-nothing baseline);
* **PT-Migr** — the paper's data-page migration policy on top of the
  same static page tables;
* **PT-Repl** — Mitosis-style page-table replication: a per-(PT page,
  node) remote-walk counter bank (the walk analog of the hot-page miss
  counters) triggers a replica of the walked PT page on the walking
  node;
* **CoPlace** — Phoenix-style co-placement: data migration plus, on a
  walk trigger, a cost-model arbitration between *replicating the PT
  page* onto the thread's node and *re-homing the thread* onto the PT
  page's node — whichever is cheaper under
  :class:`~repro.ptpol.costs.PtCostModel`.

Data-page decisions run through the very same ``_pager_act`` state
machine as the existing dynamic policies, with one twist: the CPU->node
map is a mutable list, so a thread re-homing by the co-placement policy
immediately re-costs that CPU's subsequent misses and walks.  (Threads
are modelled at CPU granularity — the affinity scheduler pins one
runnable thread per CPU in the trace generator, so "migrate the thread
on CPU c" and "re-home CPU c" coincide.)

Replica maintenance is charged, not assumed free: the first fault of a
data page is a PT write (a mapping is created) and propagates to every
standing replica of its PT page at ``pt_update_ns`` each; a data-page
migration rewrites the mapping and propagates the same way; installing
a replica swaps the node's root pointers under a TLB shootdown round.
All of it lands in :class:`~repro.ptpol.state.PtTally`, which must
reconcile exactly with the emitted
:class:`~repro.obs.events.PtReplicate` /
:class:`~repro.obs.events.ThreadMigrate` events
(:func:`~repro.ptpol.state.reconcile_events`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.common.errors import ConfigurationError, TraceError
from repro.obs.events import (
    HotPageTriggered,
    IntervalReset,
    MissServiced,
    PtReplicate,
    ShootdownEvent,
    ThreadMigrate,
)
from repro.policy.parameters import PolicyParameters
from repro.ptpol.costs import DEFAULT_PT_COSTS, PtCostModel
from repro.ptpol.state import PtReplicaTable, PtTally
from repro.trace.policysim import (
    PolicySimResult,
    TracePolicySimulator,
    _pager_act,
)
from repro.trace.record import Trace
from repro.trace.tlbsim import derive_tlb_trace

#: The PT policy family, in presentation order.
PT_POLICIES = ("ptft", "ptmigr", "ptrepl", "coplace")

#: Display labels, keyed by policy token.
PT_POLICY_LABELS = {
    "ptft": "PT-FT",
    "ptmigr": "PT-Migr",
    "ptrepl": "PT-Repl",
    "coplace": "CoPlace",
}


def params_for_pt_policy(policy: str, trigger: int = 128) -> PolicyParameters:
    """The :class:`PolicyParameters` encoding one PT-family policy.

    ``trigger`` is the *data* hot-page trigger; the walk trigger scales
    with it (half, floor 1) because a walk-counter increment stands for
    a burst of TLB misses the same way a weighted miss record stands
    for a burst of cache misses.
    """
    pt_trigger = max(1, trigger // 2)
    if policy == "ptft":
        return PolicyParameters.base(
            trigger_threshold=trigger,
            enable_migration=False,
            enable_replication=False,
            pt_trigger_threshold=pt_trigger,
        )
    if policy == "ptmigr":
        return PolicyParameters.migration_only(
            trigger_threshold=trigger,
            pt_trigger_threshold=pt_trigger,
        )
    if policy == "ptrepl":
        return PolicyParameters.pt_replication(
            trigger_threshold=trigger,
            pt_trigger_threshold=pt_trigger,
        )
    if policy == "coplace":
        return PolicyParameters.co_placement(
            trigger_threshold=trigger,
            pt_trigger_threshold=pt_trigger,
        )
    raise ConfigurationError(
        f"unknown PT policy {policy!r}; expected one of {PT_POLICIES}"
    )


class _PtReplayState:
    """The PT-policy replay state machine, shared by both engines.

    Holds every piece of mutable replay state — data-page copies and
    counters, the CPU->node map (mutable, so thread re-homing sticks),
    the replica table, walk counters, the pending action queues and the
    per-interval demand/maintenance structures — plus the action
    handlers that mutate it.  The scalar core drives it one merged
    record at a time (:meth:`drain` / :meth:`reset` / :meth:`process`);
    the vector engine (:mod:`repro.ptpol.fastpath`) drives the same
    object per interval segment, bulk-accounting cold records and
    sub-replaying hot candidates through :meth:`process`, so every
    policy action runs through one implementation.

    Two hooks exist only for the vector engine and are inert under the
    scalar loop:

    * ``em`` — the :class:`~repro.obs.batch.BatchEmitter` the engine
      traces through (``tracer`` is then the same object);
    * ``key_of`` — maps an action's due time to its ``(index,
      data_phase, pt_phase)`` emission key: the global index of the
      record the scalar core would drain it on.  When set,
      :meth:`drain` also *interleaves* the two pending queues by that
      record index (data before PT at the same record), reproducing
      the scalar core's per-record drain order even though the engine
      only drains at hot events and segment boundaries.
    """

    def __init__(self, sim: "PtPolicySimulator", params, result) -> None:
        # Data-page state, exactly as in _replay_dynamic — except the
        # CPU->node map is a mutable list so thread re-homing sticks.
        from repro.machine.directory import MissCounterBank

        cfg = sim.config
        self.cfg = cfg
        self.costs = sim.costs
        self.params = params
        self.result = result
        self.tally = sim.tally = PtTally()
        self.ptrep = sim.replicas = PtReplicaTable()
        self.copies: Dict[int, Set[int]] = {}
        self.bank = MissCounterBank(cfg.n_cpus)
        self.armed: Set[int] = set()
        self.cpu_node = [cfg.node_of_cpu(c) for c in range(cfg.n_cpus)]
        self.cpus_per_node = cfg.n_cpus // cfg.n_nodes
        self.span = cfg.pt_span_pages
        self.local_ns, self.remote_ns = cfg.local_ns, cfg.remote_ns
        self.walk_local_ns = cfg.pt_walk_local_ns
        self.walk_remote_ns = cfg.pt_walk_remote_ns
        self.op_cost = cfg.op_cost_ns
        self.data_dynamic = (
            params.enable_migration or params.enable_replication
        )
        self.pt_dynamic = params.enable_pt_replication
        self.coplace = params.enable_thread_migration
        self.trigger = params.trigger_threshold
        self.pt_trigger = params.pt_trigger_threshold
        self.next_reset = params.reset_interval_ns
        self.interval_index = 0
        self.local_stall = 0.0
        self.walk_stall = 0.0
        self.local_walk_stall = 0.0
        self.update_cost = 0.0
        self.shootdown_cost = 0.0
        self.pending: deque = deque()     # (due, page, cpu) data hot pages
        self.pt_pending: deque = deque()  # (due, leaf, node, cpu, pid, walks)
        self.pt_armed: Set[Tuple[int, int]] = set()
        self.walk_bank: Dict[Tuple[int, int], int] = {}  # (leaf, node)
        # Per-interval demand/maintenance state for the arbitration.
        self.data_demand: Dict[Tuple[int, int], int] = {}  # (pid, node)
        self.leaf_writes: Dict[int, int] = {}          # leaf -> PT writes
        self.thread_moves: Dict[int, int] = {}         # pid -> re-homings
        self.mapped: Set[int] = set()                  # pages with a PTE
        self.tracer = sim.tracer
        self.trace_on = sim.tracer.active
        self.emit_miss = sim.tracer.wants(MissServiced.KIND)
        self.em = None
        self.key_of = None

    # -- action handlers -----------------------------------------------------------

    def pt_write(self, leaf: int) -> None:
        """Charge a PT write's propagation to every standing replica.

        Counted in ``leaf_writes`` even when no replica stands yet —
        that running count is what the arbitration uses to estimate
        the propagation tax a *new* replica would start paying.
        """
        self.leaf_writes[leaf] = self.leaf_writes.get(leaf, 0) + 1
        replicas = self.ptrep.replica_count(leaf) - 1
        if replicas <= 0:
            return
        cost = replicas * self.costs.pt_update_ns
        self.result.overhead_ns += cost
        self.update_cost += cost
        self.tally.pt_updates += replicas

    def act(self, now: int, page: int, cpu: int) -> None:
        before = self.result.migrations
        _pager_act(
            now, page, cpu, self.copies, self.bank, self.armed,
            self.result, self.params, self.cpu_node, self.op_cost,
            self.tracer, self.trace_on,
        )
        if self.result.migrations > before:
            # A migration rewrites the page's mapping: the write
            # propagates to every replica of its PT page.
            self.pt_write(page // self.span)

    def pt_act(
        self, now: int, leaf: int, node: int, cpu: int, pid: int, walks: int
    ) -> None:
        """Resolve one walk trigger: replicate the PT page or move the
        thread."""
        costs = self.costs
        result = self.result
        tally = self.tally
        ptrep = self.ptrep
        self.pt_armed.discard((leaf, node))
        if ptrep.holds(leaf, node):
            return  # raced: the node gained a replica while pending
        home = ptrep.home_of(leaf)
        reason = "walk-trigger"
        if self.coplace:
            tally.arbitrations += 1
            # Price the alternatives over the current interval's
            # demand, keyed by *serving* node.  Re-homing the
            # thread makes its walks of this PT page local for free
            # and flips its data locality: misses served from the
            # PT page's home node turn local, misses served from
            # the thread's current node turn remote — so the data
            # term can be a net benefit (a negative cost) when the
            # thread's data already lives with its page table.
            # Replication makes walks local at a construction +
            # flush cost plus the standing per-write propagation
            # tax observed on this PT page so far this interval.
            served_here = self.data_demand.get((pid, node), 0)
            served_home = self.data_demand.get((pid, home), 0)
            thread_cost = costs.thread_migrate_ns + (
                (served_here - served_home) * (self.remote_ns - self.local_ns)
            )
            pt_cost = (
                costs.pt_replicate_ns
                + costs.shootdown_ns(self.cpus_per_node)
                + self.leaf_writes.get(leaf, 0) * costs.pt_update_ns
            )
            if (
                thread_cost < pt_cost
                and self.thread_moves.get(pid, 0)
                < self.params.max_thread_migrations
            ):
                self.thread_moves[pid] = self.thread_moves.get(pid, 0) + 1
                self.cpu_node[cpu] = home
                result.overhead_ns += costs.thread_migrate_ns
                tally.thread_migrations += 1
                if self.trace_on:
                    self.tracer.emit(
                        ThreadMigrate(
                            t=now, process=pid, cpu=cpu, src=node,
                            dst=home, reason="cheaper-than-pt-replica",
                            latency_ns=float(costs.thread_migrate_ns),
                        )
                    )
                return
            reason = "pt-replica-cheaper" if thread_cost >= pt_cost \
                else "thread-migrations-capped"
        ptrep.add_replica(leaf, node)
        flush = costs.shootdown_ns(self.cpus_per_node)
        result.overhead_ns += costs.pt_replicate_ns + flush
        self.shootdown_cost += flush
        tally.pt_replications += 1
        tally.pt_shootdowns += 1
        if self.trace_on:
            self.tracer.emit(
                PtReplicate(
                    t=now, process=pid, cpu=cpu, pt_page=leaf,
                    node=node, src=home, walks=walks, reason=reason,
                    latency_ns=float(costs.pt_replicate_ns),
                )
            )
            self.tracer.emit(
                ShootdownEvent(
                    t=now, origin_cpu=cpu, mode="pt-root",
                    cpus_flushed=self.cpus_per_node, frames=1,
                    cost_ns=float(flush),
                )
            )

    # -- the replay loop pieces ----------------------------------------------------

    def drain(self, upto: Optional[int]) -> None:
        pending, pt_pending = self.pending, self.pt_pending
        key_of = self.key_of
        if key_of is None:
            # Scalar loop: called at every record, so every due action
            # lands on this record — the data queue first, then PT.
            while pending and (upto is None or pending[0][0] <= upto):
                due, hot_page, hot_cpu = pending.popleft()
                self.act(due, hot_page, hot_cpu)
            while pt_pending and (upto is None or pt_pending[0][0] <= upto):
                due, leaf, node, cpu, pid, walks = pt_pending.popleft()
                self.pt_act(due, leaf, node, cpu, pid, walks)
            return
        # Vector engine: a drain may span several records, so the two
        # queues are interleaved by the record each action would drain
        # on (data before PT at the same record) — PT actions re-home
        # threads and grow replica tables, so a data action landing on
        # a later record must run after them, as in the scalar core.
        em = self.em
        while True:
            d_ok = bool(pending) and (upto is None or pending[0][0] <= upto)
            p_ok = bool(pt_pending) and (
                upto is None or pt_pending[0][0] <= upto
            )
            if not d_ok and not p_ok:
                break
            if d_ok and p_ok:
                d_ok = key_of(pending[0][0])[0] \
                    <= key_of(pt_pending[0][0])[0]
            if d_ok:
                due, hot_page, hot_cpu = pending.popleft()
                if em is not None:
                    key = key_of(due)
                    em.index, em.phase = key[0], key[1]
                self.act(due, hot_page, hot_cpu)
            else:
                due, leaf, node, cpu, pid, walks = pt_pending.popleft()
                if em is not None:
                    key = key_of(due)
                    em.index, em.phase = key[0], key[2]
                self.pt_act(due, leaf, node, cpu, pid, walks)
        if em is not None:
            em.phase = None

    def reset(self, time: int) -> None:
        """Expire the interval ending at ``time`` (the reset block)."""
        self.drain(None)
        if self.trace_on:
            if self.em is not None:
                self.em.index = self.key_of(None)[0]
                self.em.phase = None
            self.tracer.emit(
                IntervalReset(
                    t=time,
                    index=self.interval_index,
                    tracked_pages=self.bank.tracked_pages,
                    triggers=self.result.hot_events,
                )
            )
        self.interval_index += 1
        self.bank.reset()
        self.armed.clear()
        self.walk_bank.clear()
        self.pt_armed.clear()
        self.data_demand.clear()
        self.leaf_writes.clear()
        self.thread_moves.clear()
        while self.next_reset <= time:
            self.next_reset += self.params.reset_interval_ns
        if self.em is not None:
            self.em.flush()

    def process(
        self, time, cpu, pid, page, weight, is_write, is_cost
    ) -> None:
        """One merged record through the policy state machine."""
        result = self.result
        tally = self.tally
        ptrep = self.ptrep
        node = self.cpu_node[cpu]
        leaf = page // self.span
        ptrep.observe(leaf, node)
        if is_cost:
            # -- a data miss: cost it, then maybe drive the data policy
            page_copies = self.copies.get(page)
            if page_copies is None:
                page_copies = self.copies[page] = {node}
            if page not in self.mapped:
                self.mapped.add(page)
                self.pt_write(leaf)  # a new mapping is a PT write
            local = node in page_copies
            result.total_misses += weight
            if local:
                result.local_misses += weight
                result.stall_ns += weight * self.local_ns
                self.local_stall += weight * self.local_ns
            else:
                result.stall_ns += weight * self.remote_ns
            if self.coplace:
                key = (pid, node if local else min(page_copies))
                self.data_demand[key] = self.data_demand.get(key, 0) + weight
            if self.emit_miss:
                self.tracer.emit(
                    MissServiced(
                        t=time, cpu=cpu, page=page,
                        node=node if local else min(page_copies),
                        weight=weight,
                        latency_ns=float(
                            self.local_ns if local else self.remote_ns
                        ),
                        remote=not local, process=pid,
                    )
                )
            if not self.data_dynamic:
                return
            count = self.bank.record(page, cpu, weight, is_write)
            if count < self.trigger or page in self.armed:
                return
            if node in page_copies:
                return  # hot but already local
            result.hot_events += 1
            self.armed.add(page)
            if self.trace_on:
                self.tracer.emit(
                    HotPageTriggered(
                        t=time, page=page, cpu=cpu, count=count,
                        threshold=self.trigger,
                    )
                )
            self.pending.append(
                (time + self.cfg.decision_delay_ns, page, cpu)
            )
        else:
            # -- a TLB miss: every one costs a page-table walk
            walk_local = ptrep.holds(leaf, node)
            tally.walks += weight
            stall = weight * (
                self.walk_local_ns if walk_local else self.walk_remote_ns
            )
            result.stall_ns += stall
            self.walk_stall += stall
            if walk_local:
                tally.local_walks += weight
                self.local_walk_stall += stall
                self.local_stall += stall
            if self.emit_miss:
                self.tracer.emit(
                    MissServiced(
                        t=time, cpu=cpu, page=page,
                        node=node if walk_local else ptrep.home_of(leaf),
                        weight=weight,
                        latency_ns=float(
                            self.walk_local_ns if walk_local
                            else self.walk_remote_ns
                        ),
                        remote=not walk_local, process=pid, walk=True,
                    )
                )
            if not self.pt_dynamic or walk_local:
                return
            key = (leaf, node)
            count = self.walk_bank.get(key, 0) + weight
            self.walk_bank[key] = count
            if count < self.pt_trigger or key in self.pt_armed:
                return
            tally.walk_triggers += 1
            self.pt_armed.add(key)
            self.pt_pending.append(
                (time + self.cfg.decision_delay_ns, leaf, node, cpu, pid,
                 count)
            )

    def finalize(self) -> None:
        """Publish the run's PT-side aggregates into ``result.extra``."""
        result = self.result
        tally = self.tally
        result.extra["local_stall_ns"] = self.local_stall
        result.extra["pt_walks"] = float(tally.walks)
        result.extra["pt_local_walks"] = float(tally.local_walks)
        result.extra["pt_walk_stall_ns"] = self.walk_stall
        result.extra["pt_local_walk_stall_ns"] = self.local_walk_stall
        result.extra["pt_replications"] = float(tally.pt_replications)
        result.extra["thread_migrations"] = float(tally.thread_migrations)
        result.extra["pt_updates"] = float(tally.pt_updates)
        result.extra["pt_update_cost_ns"] = self.update_cost
        result.extra["pt_shootdowns"] = float(tally.pt_shootdowns)
        result.extra["pt_shootdown_cost_ns"] = self.shootdown_cost


class PtPolicySimulator(TracePolicySimulator):
    """Replay a trace under the page-table placement policies.

    Both engines run it: the scalar core drives :class:`_PtReplayState`
    one merged record at a time, while ``engine="vector"`` — what
    ``"auto"`` picks — replays interval segments through
    :mod:`repro.ptpol.fastpath`, bulk-accounting cold misses and walks
    and sub-replaying the hot candidates through the very same state
    machine.  Results and event logs are byte-identical between the
    two.
    """

    def __init__(
        self,
        config=None,
        tracer=None,
        metrics=None,
        profiler=None,
        costs: Optional[PtCostModel] = None,
    ) -> None:
        super().__init__(
            config=config, tracer=tracer, metrics=metrics, profiler=profiler
        )
        self.costs = costs or DEFAULT_PT_COSTS
        #: Tally of the most recent :meth:`simulate` run.
        self.tally: PtTally = PtTally()
        #: Replica table of the most recent run.
        self.replicas: PtReplicaTable = PtReplicaTable()

    # -- entry point ---------------------------------------------------------------

    def simulate(
        self,
        trace: Trace,
        params: PolicyParameters,
        label: Optional[str] = None,
        driver_trace: Optional[Trace] = None,
    ) -> PolicySimResult:
        """Replay ``trace`` under one PT-family policy.

        ``driver_trace`` is the TLB-miss stream (derived from ``trace``
        when omitted); it both costs walk stall and drives the walk
        counters.  The data-page side of ``params`` behaves exactly as
        in :meth:`simulate_dynamic`.
        """
        cfg = self.config
        engine = self._resolve_engine("ptpol")
        if driver_trace is None:
            driver_trace = derive_tlb_trace(trace, n_cpus=cfg.n_cpus)
        result = PolicySimResult(label=label or self._pt_label(params))
        self._emit_run_meta(result.label, params, pt=True)
        n_events = len(trace) + len(driver_trace)
        with self.profiler.span("replay.ptpol", items=n_events):
            if engine == "vector":
                from repro.ptpol.fastpath import replay_pt_vector

                replay_pt_vector(self, trace, driver_trace, params, result)
            else:
                self._replay_pt(trace, driver_trace, params, result)
        if self.metrics is not None:
            self._register_metrics()
        return result

    # -- the replay core -----------------------------------------------------------

    def _replay_pt(
        self,
        trace: Trace,
        driver: Trace,
        params: PolicyParameters,
        result: PolicySimResult,
    ) -> None:
        """The scalar core: one merged record at a time, in order."""
        st = _PtReplayState(self, params, result)
        for time, cpu, pid, page, weight, is_write, is_cost in (
            self._merged_process_events(trace, driver)
        ):
            st.drain(time)
            if time >= st.next_reset:
                st.reset(time)
            st.process(time, cpu, pid, page, weight, is_write, is_cost)
        st.drain(None)
        st.finalize()

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _merged_process_events(cost: Trace, driver: Trace):
        """Merge data misses and walks in time order, with processes.

        The PT twin of ``_merged_events``: driver (walk) events sort
        *after* cost events at equal timestamps, so a PT action never
        retroactively cheapens the walk that triggered it — and since
        every derived TLB record shares a timestamp with the cache-miss
        record that produced it, the first sighting of a page is always
        the data miss that faults its mapping in.
        """
        if cost.meta is not driver.meta and cost.meta is not None:
            if driver.meta is not None and cost.meta.name != driver.meta.name:
                raise TraceError(
                    "cost and driver traces are from different workloads"
                )
        i = j = 0
        n_cost, n_driver = len(cost), len(driver)
        c_t, d_t = cost.time_ns.tolist(), driver.time_ns.tolist()
        c_c, d_c = cost.cpu.tolist(), driver.cpu.tolist()
        c_pr, d_pr = cost.process.tolist(), driver.process.tolist()
        c_p, d_p = cost.page.tolist(), driver.page.tolist()
        c_wt, d_wt = cost.weight.tolist(), driver.weight.tolist()
        c_w, d_w = cost.is_write.tolist(), driver.is_write.tolist()
        while i < n_cost or j < n_driver:
            take_cost = j >= n_driver or (i < n_cost and c_t[i] <= d_t[j])
            if take_cost:
                yield (c_t[i], c_c[i], c_pr[i], c_p[i], c_wt[i], c_w[i], True)
                i += 1
            else:
                yield (d_t[j], d_c[j], d_pr[j], d_p[j], d_wt[j], d_w[j], False)
                j += 1

    def _register_metrics(self) -> None:
        """Publish the run's tally under the ``ptpol.*`` namespace.

        Callbacks read the live tally, so re-running :meth:`simulate`
        on the same simulator keeps the registry current without
        re-registration (the names are claimed once).
        """
        tally = lambda: self.tally  # noqa: E731 - late-bound current tally
        names = (
            ("ptpol.walks", lambda: float(tally().walks)),
            ("ptpol.local_walks", lambda: float(tally().local_walks)),
            ("ptpol.pt_replications", lambda: float(tally().pt_replications)),
            ("ptpol.thread_migrations",
             lambda: float(tally().thread_migrations)),
            ("ptpol.pt_updates", lambda: float(tally().pt_updates)),
            ("ptpol.pt_shootdowns", lambda: float(tally().pt_shootdowns)),
            ("ptpol.walk_triggers", lambda: float(tally().walk_triggers)),
            ("ptpol.arbitrations", lambda: float(tally().arbitrations)),
        )
        for name, fn in names:
            try:
                self.metrics.register_callback(name, fn)
            except ConfigurationError:
                pass  # already registered by an earlier run

    @staticmethod
    def _pt_label(params: PolicyParameters) -> str:
        if params.enable_thread_migration:
            return PT_POLICY_LABELS["coplace"]
        if params.enable_pt_replication:
            return PT_POLICY_LABELS["ptrepl"]
        if params.enable_migration:
            return PT_POLICY_LABELS["ptmigr"]
        return PT_POLICY_LABELS["ptft"]


def simulate_ptpol(
    trace: Trace,
    policy: str,
    config=None,
    trigger: int = 128,
    tracer=None,
    metrics=None,
    profiler=None,
    costs: Optional[PtCostModel] = None,
    driver_trace: Optional[Trace] = None,
) -> Tuple[PolicySimResult, PtTally]:
    """One-call replay of ``trace`` under PT policy token ``policy``.

    Returns the result alongside the run's :class:`PtTally` (which the
    caller can reconcile against a captured event stream).
    """
    sim = PtPolicySimulator(
        config=config, tracer=tracer, metrics=metrics, profiler=profiler,
        costs=costs,
    )
    params = params_for_pt_policy(policy, trigger=trigger)
    result = sim.simulate(
        trace, params, label=PT_POLICY_LABELS[policy],
        driver_trace=driver_trace,
    )
    return result, sim.tally

"""Page-table replica state and the PT-policy action tally.

:class:`PtReplicaTable` is the per-process replica state machine the
simulator replays (see docs/PTPOLICY.md for the state diagram), and
:class:`PtTally` is its Table 4 counterpart: every PT action the run
takes lands in exactly one tally bucket, and the decision events emitted
alongside must reconcile with the tally exactly —
:func:`reconcile_events` enforces that, and the CI sweep-smoke job runs
it on every PT-policy cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.obs.events import MissServiced, PtReplicate, ThreadMigrate


@dataclass
class PtTally:
    """Counts of every PT-policy action and walk the run observed."""

    walks: int = 0               # weighted PT walks (TLB misses)
    local_walks: int = 0         # walks satisfied by a node-local PT
    pt_replications: int = 0     # PtReplicate events
    thread_migrations: int = 0   # ThreadMigrate events
    pt_updates: int = 0          # write propagations (per replica)
    pt_shootdowns: int = 0       # root-pointer flush rounds
    walk_triggers: int = 0       # walk counters crossing the trigger
    arbitrations: int = 0        # co-placement tie-breaks decided

    @property
    def remote_walks(self) -> int:
        return self.walks - self.local_walks

    @property
    def local_walk_fraction(self) -> float:
        return self.local_walks / self.walks if self.walks else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {
            "walks": self.walks,
            "local_walks": self.local_walks,
            "pt_replications": self.pt_replications,
            "thread_migrations": self.thread_migrations,
            "pt_updates": self.pt_updates,
            "pt_shootdowns": self.pt_shootdowns,
            "walk_triggers": self.walk_triggers,
            "arbitrations": self.arbitrations,
        }


class PtReplicaTable:
    """Which nodes hold a replica of each page-table page.

    A PT page (one radix-tree leaf, mapping ``pt_span_pages`` data
    pages) is homed first-touch: on the node whose CPU first faulted a
    data page in its span — which, in a shared address space, is
    usually *not* every node that later walks it.  Replicas are added
    by the policy and persist to end of run (there is no replica
    collapse — PT pages are read-mostly, writes are propagated).
    """

    def __init__(self) -> None:
        self.home: Dict[int, int] = {}
        self.replicas: Dict[int, Set[int]] = {}

    def observe(self, pt_page: int, node: int) -> None:
        """First sighting of ``pt_page`` homes it on ``node``."""
        if pt_page not in self.home:
            self.home[pt_page] = node
            self.replicas[pt_page] = {node}

    def holds(self, pt_page: int, node: int) -> bool:
        """Does ``node`` hold a replica (or the primary) of ``pt_page``?"""
        nodes = self.replicas.get(pt_page)
        return nodes is not None and node in nodes

    def add_replica(self, pt_page: int, node: int) -> None:
        self.replicas[pt_page].add(node)

    def replica_count(self, pt_page: int) -> int:
        return len(self.replicas.get(pt_page, ()))

    def home_of(self, pt_page: int) -> int:
        return self.home[pt_page]


def reconcile_events(tally: PtTally, events) -> List[str]:
    """Mismatches between a run's PT tally and its event stream.

    Counts the :class:`PtReplicate` / :class:`ThreadMigrate` decision
    events and the walk-flagged :class:`MissServiced` events in
    ``events`` and compares them against the tally; an empty return
    means every PT action the tally recorded was emitted exactly once.
    Walk counts are only checked when the stream carries miss events
    (decision-only logs skip them, mirroring ``Attribution.reconcile``).
    """
    pt_replications = 0
    thread_migrations = 0
    walks = 0
    local_walks = 0
    saw_misses = False
    for event in events:
        if isinstance(event, PtReplicate):
            pt_replications += 1
        elif isinstance(event, ThreadMigrate):
            thread_migrations += 1
        elif isinstance(event, MissServiced):
            saw_misses = True
            if event.walk:
                walks += event.weight
                if not event.remote:
                    local_walks += event.weight
    errors: List[str] = []
    checks = [
        ("pt_replications", pt_replications, tally.pt_replications),
        ("thread_migrations", thread_migrations, tally.thread_migrations),
    ]
    if saw_misses:
        checks.append(("walks", walks, tally.walks))
        checks.append(("local_walks", local_walks, tally.local_walks))
    for label, got, want in checks:
        if got != want:
            errors.append(
                f"ptpol.{label}: events {got} != tally {want}"
            )
    return errors

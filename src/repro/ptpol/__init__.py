"""Page-table replication and thread/page co-placement policies.

The first policy family beyond the source paper: where the six Section 8
policies place *data* pages, this package places *page tables* — either
replicating a process's PT onto the nodes that walk it remotely (the
Mitosis mechanism) or, when the cost model says it is cheaper, re-homing
the thread next to its page table instead (the Phoenix-style
co-placement tie-break).  See docs/PTPOLICY.md for the state machine and
the cost-charging rules.

Public surface:

* :class:`PtPolicySimulator` / :func:`simulate_ptpol` — the replay core;
* :class:`PtCostModel` — PT action costs derived from the kernel model;
* :class:`PtTally` / :class:`PtReplicaTable` — run state;
* :func:`reconcile_events` — tally-vs-event-stream exactness check;
* :data:`PT_POLICIES` / :data:`PT_POLICY_LABELS` /
  :func:`params_for_pt_policy` — the policy tokens the experiment grids
  use.
"""

from repro.ptpol.costs import DEFAULT_PT_COSTS, PtCostModel
from repro.ptpol.sim import (
    PT_POLICIES,
    PT_POLICY_LABELS,
    PtPolicySimulator,
    params_for_pt_policy,
    simulate_ptpol,
)
from repro.ptpol.state import PtReplicaTable, PtTally, reconcile_events

__all__ = [
    "DEFAULT_PT_COSTS",
    "PT_POLICIES",
    "PT_POLICY_LABELS",
    "PtCostModel",
    "PtPolicySimulator",
    "PtReplicaTable",
    "PtTally",
    "params_for_pt_policy",
    "reconcile_events",
    "simulate_ptpol",
]

"""Vectorized replay of the page-table placement policies.

The data-policy vector engine (:mod:`repro.trace.fastpath`) rests on
one observation: almost no page ever crosses the trigger threshold, so
almost every record can be accounted in bulk.  The same skew holds one
level down the translation path — almost no PT page's walk counter
crosses the walk trigger either — so the PT-family replay
(:class:`repro.ptpol.sim.PtPolicySimulator`) gets the same treatment:

* the merged data-miss/walk stream is cut into *interval segments*:
  the PT state machine clears every per-interval structure at each
  reset, so segments are exactly the reset intervals and no counter
  state carries across a boundary;
* per segment, array scans find the candidate *data pages* (pairs
  whose summed weight could cross the data trigger while remote), the
  candidate *PT pages* (walk pairs that could cross the walk trigger)
  and — under co-placement — the CPU/process set ``K`` those
  candidates implicate;
* every record touching a candidate, every record of a ``K`` CPU or
  process, and every first fault in a candidate PT page's span is
  *hot* and sub-replays through the scalar state machine
  (:class:`repro.ptpol.sim._PtReplayState`), so decisions, the
  co-placement arbitration and replica maintenance follow the exact
  scalar code path;
* everything else is cold: stall, locality, tallies and (when tracing)
  per-record emissions are computed in bulk against state that is
  provably constant over the segment — a cold page's single copy never
  moves (only candidates migrate), a cold walk pair's replica set
  never grows (only candidate pairs replicate), and a cold record's
  CPU is never re-homed (only ``K`` CPUs move).

Candidacy is conservative — a superset of what the scalar core acts
on — so over-promotion costs speed, never correctness.  Under
co-placement a fixpoint closes ``K``: re-homing a thread changes where
all of its later misses and walks land, so every record of an
implicated CPU or process must be hot, which can implicate further PT
pages in turn.  Policies without thread migration never move a CPU and
``K`` stays empty.

Tracing composes through :class:`repro.obs.batch.BatchEmitter` keyed
by :data:`repro.obs.batch.PT_REPLAY_PHASES`; the contract — results
*and* event logs byte-identical to the scalar engine — is enforced by
the differential tests in ``tests/ptpol`` and the engine-identity
integration suite.

Data-page *replication* is out of scope: no PT-family policy enables
it (they migrate at most), and the cold accounting here leans on every
data page holding exactly one copy.  A parameter set that enables it
is rejected up front rather than silently mis-replayed.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.common.errors import ConfigurationError, TraceError
from repro.obs.batch import PT_REPLAY_PHASES, BatchEmitter
from repro.obs.events import MissServiced
from repro.ptpol.sim import _PtReplayState


def replay_pt_vector(sim, trace, driver, params, result) -> None:
    """Replay ``trace`` + walk ``driver`` under one PT-family policy.

    Byte-identical to :meth:`PtPolicySimulator._replay_pt` — results,
    tally, replica table and (when tracing) the event log.
    """
    if params.enable_replication:
        raise ConfigurationError(
            "the vectorized PT replay assumes single-copy data pages; "
            "no PT-family policy enables data replication — re-run "
            "this parameter set with --engine scalar"
        )
    if trace.meta is not driver.meta and trace.meta is not None:
        if driver.meta is not None and trace.meta.name != driver.meta.name:
            raise TraceError(
                "cost and driver traces are from different workloads"
            )
    st = _PtReplayState(sim, params, result)
    tracer = sim.tracer
    em: Optional[BatchEmitter] = None
    if tracer.active:
        em = BatchEmitter(tracer, PT_REPLAY_PHASES)
        st.em = em
        st.tracer = em
        st.trace_on = True
        st.emit_miss = em.wants(MissServiced.KIND)

    n_cost, n_driver = len(trace), len(driver)
    n_total = n_cost + n_driver
    if n_total == 0:
        st.finalize()
        return

    times = np.concatenate([trace.time_ns, driver.time_ns]).astype(np.int64)
    cpus = np.concatenate([trace.cpu, driver.cpu]).astype(np.int64)
    pids = np.concatenate([trace.process, driver.process]).astype(np.int64)
    pages = np.concatenate([trace.page, driver.page]).astype(np.int64)
    weights = np.concatenate([trace.weight, driver.weight]).astype(np.int64)
    iswrite = np.concatenate(
        [np.asarray(trace.is_write, bool), np.asarray(driver.is_write, bool)]
    )
    costmask = np.concatenate(
        [np.ones(n_cost, dtype=bool), np.zeros(n_driver, dtype=bool)]
    )
    # Stable sort with the cost block first: at equal timestamps the
    # cost record precedes the driver record (the
    # ``_merged_process_events`` tie rule) and driver records keep
    # their derivation order.
    order = np.argsort(times, kind="stable")
    times = times[order]
    cpus = cpus[order]
    pids = pids[order]
    pages = pages[order]
    weights = weights[order]
    iswrite = iswrite[order]
    costmask = costmask[order]
    leaves = pages // sim.config.pt_span_pages

    engine = _PtSegmentEngine(st, int(pages.max()) + 1, int(leaves.max()) + 1)
    iids = times // params.reset_interval_ns
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(iids) != 0) + 1, [n_total]]
    )
    for si in range(len(starts) - 1):
        s, e = int(starts[si]), int(starts[si + 1])
        engine.boundary(s, int(times[s]))
        engine.run_segment(
            s, times[s:e], cpus[s:e], pids[s:e], pages[s:e], weights[s:e],
            iswrite[s:e], costmask[s:e], leaves[s:e],
        )
    engine.finish(n_total)


class _PtSegmentEngine:
    """Per-interval-segment driver around one :class:`_PtReplayState`."""

    def __init__(self, st: _PtReplayState, n_pages: int, n_leaves: int):
        self.st = st
        self.n_nodes = st.cfg.n_nodes
        self.n_cpus = st.cfg.n_cpus
        #: page -> its single copy's node (-1 until first faulted);
        #: synced with ``st.copies`` after every sub-replay.
        self.data_node = np.full(n_pages, -1, dtype=np.int64)
        #: leaf -> seen by any earlier record (mirror of homing state).
        self.leaf_seen = np.zeros(n_leaves, dtype=bool)

    # -- boundaries ----------------------------------------------------------------

    def boundary(self, gidx: int, t_first: int) -> None:
        """Drain (and maybe reset) at a segment's first record.

        Mirrors the top of the scalar loop at that record: actions due
        by ``t_first`` drain first (phases 0/1), then — when the record
        opens a new interval — the reset flushes the not-yet-due rest
        (phases 2/3) before emitting the :class:`IntervalReset`.
        """
        st = self.st
        st.key_of = lambda due, g=gidx, tr=t_first: (
            (g, 0, 1) if (due is not None and due <= tr) else (g, 2, 3)
        )
        # Pager actions drained here can still migrate pages armed in
        # the previous segment; the placement mirror must follow, or
        # the new segment's cold accounting and candidacy would read
        # the pre-migration home.
        moved = [entry[1] for entry in st.pending]
        st.drain(t_first)
        if t_first >= st.next_reset:
            st.reset(t_first)  # drains the rest; flushes the emitter
        elif st.em is not None:
            st.em.flush()
        data_node = self.data_node
        copies = st.copies
        for page in moved:
            copy_set = copies.get(page)
            if copy_set:
                data_node[page] = min(copy_set)

    def finish(self, n_total: int) -> None:
        """The end-of-run drain (everything lands past the last record)."""
        st = self.st
        st.key_of = lambda due, g=n_total: (g, 0, 1)
        st.drain(None)
        if st.em is not None:
            st.em.flush()
        st.finalize()

    # -- one interval segment ------------------------------------------------------

    def run_segment(self, g0, t, cpu, pid, page, w, iw, cost, leaf) -> None:
        st = self.st
        em = st.em
        result = st.result
        data_node = self.data_node
        walk = ~cost
        # Segment-start CPU homes; only K CPUs can move mid-segment and
        # all of their records are hot, so cold records resolve their
        # node against this snapshot.
        node_now = np.array(st.cpu_node, dtype=np.int64)
        node_ev = node_now[cpu]

        # 1. First faults (the records that would call pt_write) and
        # the candidate/implicated sets.
        ft_pos = self._first_touches(page, cost)
        page_flag, leaf_flag, kcpu_flag, k_pids = self._candidates(
            cpu, pid, page, w, cost, walk, leaf, node_now, node_ev, ft_pos
        )

        hot = cost & page_flag[page]
        hot |= walk & leaf_flag[leaf]
        hot |= kcpu_flag[cpu]
        if k_pids:
            hot |= np.isin(pid, np.fromiter(k_pids, dtype=np.int64))
        # First faults in a candidate PT page's span are hot too: their
        # PT-write propagation cost reads a replica count the policy
        # may change mid-segment.
        if len(ft_pos):
            hot[ft_pos] |= leaf_flag[leaf[ft_pos]]

        # 2. Home PT pages whose first sighting is a cold record (the
        # scalar core observes on every record; hot records observe
        # in-order during the sub-replay).
        unseen = ~self.leaf_seen[leaf]
        if unseen.any():
            upos = np.flatnonzero(unseen)
            ul, fi = np.unique(leaf[upos], return_index=True)
            fpos = upos[fi]
            coldf = ~hot[fpos]
            observe = st.ptrep.observe
            for leaf_, pos_ in zip(
                ul[coldf].tolist(), fpos[coldf].tolist()
            ):
                observe(leaf_, int(node_ev[pos_]))

        # 3. Cold first faults: place the page, map it, and charge the
        # mapping write's propagation to standing replicas — constant
        # over the segment, since only candidate leaves gain replicas
        # and their first faults are hot.  ``leaf_writes`` is skipped:
        # only candidate leaves' counts are ever read before the reset
        # clears them.
        cold_ft = ft_pos[~hot[ft_pos]] if len(ft_pos) else ft_pos
        if len(cold_ft):
            fp = page[cold_ft]
            data_node[fp] = node_ev[cold_ft]
            st.mapped.update(fp.tolist())
            costs = st.costs
            fleaves, fcounts = np.unique(leaf[cold_ft], return_counts=True)
            for leaf_, n_ft in zip(fleaves.tolist(), fcounts.tolist()):
                replicas = st.ptrep.replica_count(leaf_) - 1
                if replicas <= 0:
                    continue
                cost_ns = n_ft * replicas * costs.pt_update_ns
                result.overhead_ns += cost_ns
                st.update_cost += cost_ns
                st.tally.pt_updates += n_ft * replicas

        # 4. Materialize candidate pages' (singleton) copy sets.
        hotc = hot & cost
        hot_pages = np.unique(page[hotc]) if hotc.any() else None
        if hot_pages is not None:
            copies = st.copies
            for page_ in hot_pages.tolist():
                node_ = int(data_node[page_])
                if node_ >= 0 and page_ not in copies:
                    copies[page_] = {node_}

        # 5. Sub-replay the hot records through the scalar state
        # machine, in stream order; drained actions key their emission
        # to the record the scalar core pops them on.
        st.key_of = lambda due, g=g0, tt=t: (
            g + int(np.searchsorted(tt, due, side="left")), 0, 1
        )
        if hot.any():
            hi = np.flatnonzero(hot)
            ht = t[hi].tolist()
            hc = cpu[hi].tolist()
            hpd = pid[hi].tolist()
            hp = page[hi].tolist()
            hw = w[hi].tolist()
            hwr = iw[hi].tolist()
            hco = cost[hi].tolist()
            hg = (g0 + hi).tolist() if em is not None else None
            process = st.process
            drain = st.drain
            for k in range(len(ht)):
                tk = ht[k]
                drain(tk)
                if em is not None:
                    em.index = hg[k]
                    em.phase = None
                process(tk, hc[k], hpd[k], hp[k], hw[k], hwr[k], hco[k])
        # Resolve every action already due within the segment while its
        # timestamps (the emission keys) are at hand.
        st.drain(int(t[-1]))

        # 6. Publish candidate pages' placements for the cold bulk.
        if hot_pages is not None:
            copies = st.copies
            for page_ in hot_pages.tolist():
                copy_set = copies.get(page_)
                if copy_set:
                    data_node[page_] = min(copy_set)

        # 7. Cold bulk accounting.
        cold = ~hot
        self._cold_data(g0, t, cpu, pid, page, w, iw, cold & cost, node_ev)
        self._cold_walks(g0, t, cpu, pid, page, w, cold & walk, leaf, node_ev)

        # 8. Every leaf touched this segment is now homed.
        self.leaf_seen[leaf] = True

    # -- candidacy -----------------------------------------------------------------

    def _first_touches(self, page, cost) -> np.ndarray:
        """Positions of the first fault of each not-yet-mapped page."""
        ci = np.flatnonzero(cost)
        if not len(ci):
            return ci
        cp = page[ci]
        new = self.data_node[cp] == -1
        if not new.any():
            return ci[:0]
        _, fi = np.unique(cp[new], return_index=True)
        return ci[np.flatnonzero(new)[fi]]

    def _candidates(
        self, cpu, pid, page, w, cost, walk, leaf, node_now, node_ev, ft_pos
    ):
        """Conservative candidate sets for one segment.

        Returns ``(page_flag, leaf_flag, kcpu_flag, k_pids)``: data
        pages whose counters could cross the trigger while remote, PT
        pages whose walk counters could cross the walk trigger on some
        node, and the CPUs/processes implicated by walks on those PT
        pages (non-empty only under co-placement).  All four are
        supersets of what the scalar core acts on; every record they
        touch is sub-replayed exactly.
        """
        st = self.st
        n_leaves = len(self.leaf_seen)
        page_flag = np.zeros(len(self.data_node), dtype=bool)
        leaf_flag = np.zeros(n_leaves, dtype=bool)
        kcpu_flag = np.zeros(self.n_cpus, dtype=bool)
        k_pids: Set[int] = set()

        # -- PT-page candidacy: which (leaf, node) walk counters could
        # cross pt_trigger?  Walks local at segment start never count
        # (replica sets only grow); walks by K CPUs could land on any
        # node, so they credit their whole leaf.
        if st.pt_dynamic and walk.any():
            wl = leaf[walk]
            wn = node_ev[walk]
            ww = w[walk].astype(np.float64)
            wc = cpu[walk]
            wp = pid[walk]
            pair_ids = wl * self.n_nodes + wn
            upair = np.unique(pair_ids)
            holds = st.ptrep.holds
            n_nodes = self.n_nodes
            pair_remote = np.fromiter(
                (
                    not holds(int(pr) // n_nodes, int(pr) % n_nodes)
                    for pr in upair
                ),
                dtype=bool, count=len(upair),
            )
            remote_ev = pair_remote[np.searchsorted(upair, pair_ids)]
            idxp = np.searchsorted(upair, pair_ids)
            while True:
                in_k = kcpu_flag[wc]
                base = np.bincount(
                    idxp, weights=np.where(~in_k & remote_ev, ww, 0.0),
                    minlength=len(upair),
                )
                reach = base
                credit = None
                if in_k.any():
                    credit = np.bincount(
                        wl, weights=np.where(in_k, ww, 0.0),
                        minlength=n_leaves,
                    )
                    reach = base + credit[upair // n_nodes]
                new_flag = np.zeros(n_leaves, dtype=bool)
                new_flag[(upair // n_nodes)[reach >= st.pt_trigger]] = True
                if credit is not None:
                    new_flag |= credit >= st.pt_trigger
                grew = bool((new_flag & ~leaf_flag).any())
                leaf_flag |= new_flag
                if not st.coplace or not grew:
                    break
                # Close K: a walk on a candidate leaf can trigger an
                # arbitration that re-homes its thread — so that CPU's
                # (and that process's) every record must replay exactly,
                # which in turn can push further leaves over the
                # trigger.  Monotone (flags only grow), so it
                # terminates.
                on_cand = leaf_flag[wl]
                kcpu_flag[wc[on_cand]] = True
                k_pids.update(np.unique(wp[on_cand]).tolist())

        # -- data-page candidacy (with the final K).
        if st.data_dynamic and cost.any():
            cp = page[cost]
            cc = cpu[cost]
            cw = w[cost].astype(np.float64)
            ids = cp * self.n_cpus + cc
            uids, inv = np.unique(ids, return_inverse=True)
            sums = np.bincount(inv, weights=cw)
            big = sums >= st.trigger
            if big.any():
                bp = uids[big] // self.n_cpus
                bc = uids[big] % self.n_cpus
                place = self.data_node[bp]
                unknown = place < 0
                if unknown.any() and len(ft_pos):
                    ft_node = np.full(len(self.data_node), -1, np.int64)
                    ft_k = np.zeros(len(self.data_node), dtype=bool)
                    fp = page[ft_pos]
                    ft_node[fp] = node_ev[ft_pos]
                    ft_k[fp] = kcpu_flag[cpu[ft_pos]]
                    place = np.where(unknown, ft_node[bp], place)
                    first_toucher_moved = unknown & ft_k[bp]
                else:
                    first_toucher_moved = np.zeros(len(bp), dtype=bool)
                cand = (
                    (node_now[bc] != place)
                    | kcpu_flag[bc]
                    | first_toucher_moved
                    | (place < 0)
                )
                page_flag[bp[cand]] = True
        return page_flag, leaf_flag, kcpu_flag, k_pids

    # -- cold bulk -----------------------------------------------------------------

    def _cold_data(self, g0, t, cpu, pid, page, w, iw, coldc, node_ev) -> None:
        """Bulk-account the cold data misses of one segment.

        Cold pages' single copies never move mid-segment, so locality
        is a straight compare against ``data_node``.  ``data_demand``
        is deliberately *not* fed: the arbitration only ever reads the
        demand of a process implicated by a candidate PT page, and all
        of that process's records are hot.
        """
        if not coldc.any():
            return
        st = self.st
        result = st.result
        cw = w[coldc]
        local = self.data_node[page[coldc]] == node_ev[coldc]
        total_w = int(cw.sum())
        local_w = int(cw[local].sum())
        result.total_misses += total_w
        result.local_misses += local_w
        local_stall = local_w * st.local_ns
        result.stall_ns += local_stall + (total_w - local_w) * st.remote_ns
        st.local_stall += local_stall
        em = st.em
        if st.emit_miss:
            ci = np.flatnonzero(coldc)
            serving = np.where(
                local, node_ev[ci], self.data_node[page[ci]]
            )
            lat_l, lat_r = float(st.local_ns), float(st.remote_ns)
            em.phase = None
            emit = em.emit
            gidx = (g0 + ci).tolist()
            rows = zip(
                t[ci].tolist(), cpu[ci].tolist(), page[ci].tolist(),
                cw.tolist(), serving.tolist(), local.tolist(),
                pid[ci].tolist(),
            )
            for j, (t_, c_, p_, w_, n_, loc, pid_) in enumerate(rows):
                em.index = gidx[j]
                emit(
                    MissServiced(
                        t=t_, cpu=c_, page=p_, node=n_, weight=w_,
                        latency_ns=lat_l if loc else lat_r,
                        remote=not loc, process=pid_,
                    )
                )
        # Cold counts land in the bank only when traced: nothing reads
        # them before the reset clears them, but the reset's
        # IntervalReset.tracked_pages counts every recorded page.
        if em is not None and st.data_dynamic:
            ids = page[coldc] * self.n_cpus + cpu[coldc]
            uids, inv = np.unique(ids, return_inverse=True)
            sums = np.bincount(inv, weights=w[coldc]).astype(np.int64)
            record = st.bank.record
            for id_, s_ in zip(uids.tolist(), sums.tolist()):
                record(id_ // self.n_cpus, id_ % self.n_cpus, s_, False)
            cold_w = coldc & iw
            if cold_w.any():
                wu, winv = np.unique(page[cold_w], return_inverse=True)
                wsums = np.bincount(winv, weights=w[cold_w]).astype(np.int64)
                add_writes = st.bank.add_writes
                for p_, s_ in zip(wu.tolist(), wsums.tolist()):
                    add_writes(p_, s_)

    def _cold_walks(self, g0, t, cpu, pid, page, w, coldw, leaf, node_ev):
        """Bulk-account the cold page-table walks of one segment.

        A cold walk pair's replica set never grows mid-segment (only
        candidate pairs replicate, and their walks are all hot), so
        one ``holds()`` probe per unique (leaf, node) pair is the
        whole segment's truth.  ``walk_bank`` is deliberately not fed:
        a cold pair's counter can never reach the trigger, and the
        reset clears it unread.
        """
        if not coldw.any():
            return
        st = self.st
        ww = w[coldw]
        wl = leaf[coldw]
        wn = node_ev[coldw]
        pair_ids = wl * self.n_nodes + wn
        upair, inv = np.unique(pair_ids, return_inverse=True)
        holds = st.ptrep.holds
        n_nodes = self.n_nodes
        pair_local = np.fromiter(
            (holds(int(pr) // n_nodes, int(pr) % n_nodes) for pr in upair),
            dtype=bool, count=len(upair),
        )
        local = pair_local[inv]
        total_w = int(ww.sum())
        local_w = int(ww[local].sum())
        tally = st.tally
        tally.walks += total_w
        tally.local_walks += local_w
        local_stall = local_w * st.walk_local_ns
        stall = local_stall + (total_w - local_w) * st.walk_remote_ns
        st.result.stall_ns += stall
        st.walk_stall += stall
        st.local_walk_stall += local_stall
        st.local_stall += local_stall
        if st.emit_miss:
            em = st.em
            wi = np.flatnonzero(coldw)
            home_of = st.ptrep.home_of
            homes = np.fromiter(
                (home_of(int(leaf_)) for leaf_ in wl.tolist()),
                dtype=np.int64, count=len(wl),
            )
            serving = np.where(local, wn, homes)
            lat_l = float(st.walk_local_ns)
            lat_r = float(st.walk_remote_ns)
            em.phase = None
            emit = em.emit
            gidx = (g0 + wi).tolist()
            rows = zip(
                t[wi].tolist(), cpu[wi].tolist(), page[wi].tolist(),
                ww.tolist(), serving.tolist(), local.tolist(),
                pid[wi].tolist(),
            )
            for j, (t_, c_, p_, w_, n_, loc, pid_) in enumerate(rows):
                em.index = gidx[j]
                emit(
                    MissServiced(
                        t=t_, cpu=c_, page=p_, node=n_, weight=w_,
                        latency_ns=lat_l if loc else lat_r,
                        remote=not loc, process=pid_, walk=True,
                    )
                )

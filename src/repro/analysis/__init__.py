"""Analysis helpers: read chains, attribution, table/figure rendering."""

from repro.analysis.attribution import (
    GroupActionRow,
    GroupMissRow,
    attribution_report,
    group_actions,
    group_locality,
    group_misses,
)
from repro.analysis.readchains import (
    DEFAULT_THRESHOLDS,
    chain_survival,
    read_chain_histogram,
    replication_potential,
)
from repro.analysis.tables import (
    format_bar_figure,
    format_series,
    format_table,
    percentage,
)

__all__ = [
    "GroupActionRow",
    "GroupMissRow",
    "attribution_report",
    "group_actions",
    "group_locality",
    "group_misses",
    "DEFAULT_THRESHOLDS",
    "chain_survival",
    "read_chain_histogram",
    "replication_potential",
    "format_bar_figure",
    "format_series",
    "format_table",
    "percentage",
]

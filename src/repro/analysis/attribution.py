"""Per-page-group attribution of misses, locality and pager actions.

The paper reasons about its workloads in terms of page *classes* —
private data, read-shared data, write-shared data, code (Section 3.1) —
and our workload specs are built from exactly those classes.  This module
maps simulation outputs back onto the groups, answering the questions the
paper's per-workload discussions answer ("the engineering gain comes from
migrating private data and replicating code"; "90 % of database misses
land on write-shared pages that correctly see no action"):

* :func:`group_misses` — how each group contributes to the miss traffic;
* :func:`group_locality` — each group's local fraction under a placement;
* :func:`group_actions` — how the pager treated each group's hot pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.kernel.pager.handler import ActionTally, Outcome
from repro.trace.record import Trace
from repro.workloads.spec import WorkloadSpec


@dataclass
class GroupMissRow:
    """One group's share of the miss traffic."""

    group: str
    sharing: str
    misses: int = 0
    writes: int = 0
    share: float = 0.0

    @property
    def write_fraction(self) -> float:
        """Fraction of the group's misses that are writes."""
        return self.writes / self.misses if self.misses else 0.0


def _page_group_index(spec: WorkloadSpec) -> np.ndarray:
    """Array mapping page id -> index into ``spec.groups``."""
    group_of = {g.name: i for i, g in enumerate(spec.groups)}
    index = np.zeros(spec.total_pages, dtype=np.int64)
    for inst in spec.instances:
        index[inst.first_page : inst.last_page + 1] = group_of[inst.spec.name]
    return index


def group_misses(spec: WorkloadSpec, trace: Trace) -> List[GroupMissRow]:
    """Aggregate miss weight per page group."""
    rows = [
        GroupMissRow(group=g.name, sharing=g.sharing.value)
        for g in spec.groups
    ]
    if not len(trace):
        return rows
    index = _page_group_index(spec)
    groups = index[trace.page]
    weights = trace.weight
    totals = np.bincount(groups, weights=weights, minlength=len(rows))
    writes = np.bincount(
        groups[trace.is_write],
        weights=weights[trace.is_write],
        minlength=len(rows),
    )
    grand_total = float(totals.sum()) or 1.0
    for i, row in enumerate(rows):
        row.misses = int(totals[i])
        row.writes = int(writes[i])
        row.share = totals[i] / grand_total
    return rows


def group_locality(
    spec: WorkloadSpec,
    trace: Trace,
    placement: np.ndarray,
    node_of_cpu: Callable[[int], int],
) -> Dict[str, float]:
    """Local-miss fraction per group under a static placement array."""
    if not len(trace):
        return {g.name: 0.0 for g in spec.groups}
    index = _page_group_index(spec)
    n_cpus = int(trace.cpu.max()) + 1
    cpu_nodes = np.asarray([node_of_cpu(c) for c in range(n_cpus)])
    local = placement[trace.page] == cpu_nodes[trace.cpu]
    groups = index[trace.page]
    weights = trace.weight
    totals = np.bincount(groups, weights=weights, minlength=len(spec.groups))
    locals_ = np.bincount(
        groups[local], weights=weights[local], minlength=len(spec.groups)
    )
    return {
        g.name: (locals_[i] / totals[i] if totals[i] else 0.0)
        for i, g in enumerate(spec.groups)
    }


@dataclass
class GroupActionRow:
    """How the pager treated one group's hot pages."""

    group: str
    sharing: str
    hot_events: int = 0
    migrated: int = 0
    replicated: int = 0
    no_action: int = 0
    no_page: int = 0
    distinct_pages: int = 0


def group_actions(
    spec: WorkloadSpec, tally: ActionTally
) -> List[GroupActionRow]:
    """Aggregate the pager's per-page outcome ledger by page group."""
    rows = {
        g.name: GroupActionRow(group=g.name, sharing=g.sharing.value)
        for g in spec.groups
    }
    for page, outcomes in tally.by_page.items():
        group = spec.group_of_page(page)
        row = rows[group.name]
        row.distinct_pages += 1
        for outcome, count in outcomes.items():
            row.hot_events += count
            if outcome is Outcome.MIGRATED:
                row.migrated += count
            elif outcome is Outcome.REPLICATED:
                row.replicated += count
            elif outcome is Outcome.NO_PAGE:
                row.no_page += count
            else:
                row.no_action += count
    return [rows[g.name] for g in spec.groups]


def attribution_report(
    spec: WorkloadSpec,
    trace: Trace,
    tally: Optional[ActionTally] = None,
) -> str:
    """A human-readable per-group summary (misses + optional actions)."""
    from repro.analysis.tables import format_table

    miss_rows = group_misses(spec, trace)
    action_rows = (
        {r.group: r for r in group_actions(spec, tally)}
        if tally is not None
        else {}
    )
    table = []
    for row in miss_rows:
        cells = [
            row.group,
            row.sharing,
            row.misses,
            row.share * 100,
            row.write_fraction * 100,
        ]
        if action_rows:
            a = action_rows[row.group]
            cells += [a.hot_events, a.migrated, a.replicated, a.no_page]
        table.append(cells)
    headers = ["Group", "Class", "Misses", "Share %", "Write %"]
    if action_rows:
        headers += ["Hot", "Migr", "Repl", "NoPage"]
    return format_table(
        f"Attribution: {spec.name}", headers, table
    )

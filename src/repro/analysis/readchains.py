"""Read-chain analysis (Figure 4 of the paper).

A *read chain* is a string of reads to a page from one processor,
terminated by a write from **any** processor to that page.  Long read
chains mark pages that could profitably be replicated: every read in the
chain would have been local had the reader held a replica.

Figure 4 plots, for each chain length L on the X axis, the percentage of
all data cache misses that are part of read chains of length >= L.  The
raytrace workload has ~60 % of its data misses in chains of 512 or more;
the database workload's curve collapses early because writes chop its hot
pages' chains short.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.common.stats import WeightedHistogram
from repro.trace.record import Trace

#: The chain-length thresholds Figure 4 uses on its X axis.
DEFAULT_THRESHOLDS = (2, 8, 32, 128, 512, 2048)


def read_chain_histogram(trace: Trace, data_only: bool = True) -> WeightedHistogram:
    """Chain-length histogram weighted by misses in the chain.

    For every terminated (or end-of-trace) chain of length L the
    histogram receives weight L at value L, so
    ``histogram.fraction_at_least(x)`` is exactly Figure 4's Y value.
    """
    if data_only:
        trace = trace.data_only()
    histogram = WeightedHistogram()
    # open_chains[page][cpu] = accumulated read weight
    open_chains: Dict[int, Dict[int, int]] = {}
    pages = trace.page
    cpus = trace.cpu
    weights = trace.weight
    writes = trace.is_write
    for i in range(len(trace)):
        page = int(pages[i])
        chains = open_chains.get(page)
        if writes[i]:
            # A write from any processor terminates every open chain on
            # the page (and itself belongs to no chain).
            if chains:
                for length in chains.values():
                    if length > 0:
                        histogram.add(length, length)
                chains.clear()
            continue
        if chains is None:
            chains = open_chains[page] = {}
        cpu = int(cpus[i])
        chains[cpu] = chains.get(cpu, 0) + int(weights[i])
    # Chains still open at the end of the trace count at their final length.
    for chains in open_chains.values():
        for length in chains.values():
            if length > 0:
                histogram.add(length, length)
    return histogram


def chain_survival(
    trace: Trace,
    thresholds: Iterable[int] = DEFAULT_THRESHOLDS,
    data_only: bool = True,
) -> List[Tuple[int, float]]:
    """Figure 4's series: (L, fraction of data misses in chains >= L)."""
    histogram = read_chain_histogram(trace, data_only=data_only)
    total_misses = trace.data_only().total_misses if data_only else trace.total_misses
    write_misses = total_misses - histogram.total
    results = []
    for threshold in thresholds:
        in_chains = sum(
            w for v, w in histogram.counts.items() if v >= threshold
        )
        fraction = in_chains / total_misses if total_misses else 0.0
        results.append((int(threshold), fraction))
    # ``write_misses`` (reads are chain members; writes are not) is folded
    # into the denominator, matching the figure's "percentage of the total
    # data misses" phrasing.
    del write_misses
    return results


def replication_potential(trace: Trace, threshold: int = 512) -> float:
    """Fraction of data misses in chains >= ``threshold`` (one point)."""
    return chain_survival(trace, thresholds=(threshold,))[0][1]

"""ASCII rendering of the paper's tables and figures.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep the formatting in one place so every bench reads the
same way: a title, column headers, aligned numeric cells.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_format: str = "{:.1f}",
) -> str:
    """Render a fixed-width table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for cells in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
        )
    return "\n".join(lines)


def format_bar_figure(
    title: str,
    bars: Sequence[Tuple[str, Dict[str, float]]],
    total_label: str = "total",
    annotations: Optional[Dict[str, str]] = None,
    width: int = 44,
) -> str:
    """Render stacked bars (a Figure 3/6/8/9 analogue) as text.

    ``bars`` is a sequence of (label, {component: value}); each bar is
    drawn as one line per component plus a total, scaled so the largest
    total spans ``width`` characters.
    """
    totals = {label: sum(parts.values()) for label, parts in bars}
    biggest = max(totals.values()) if totals else 1.0
    scale = width / biggest if biggest else 0.0
    lines = [title, "=" * len(title)]
    for label, parts in bars:
        total = totals[label]
        lines.append(f"{label}  ({total_label} {total:.3g})")
        for component, value in parts.items():
            n = int(round(value * scale))
            lines.append(f"  {component:<22s} {'#' * n} {value:.3g}")
        if annotations and label in annotations:
            lines.append(f"  {annotations[label]}")
        lines.append("")
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    y_format: str = "{:.1f}",
) -> str:
    """Render one-or-more (x, y) series as a compact table (Figure 4)."""
    xs: List[float] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    xs.sort()
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List = [x]
        for name, points in series.items():
            lookup = dict(points)
            value = lookup.get(x)
            row.append(y_format.format(value) if value is not None else "-")
        rows.append(row)
    return format_table(title, headers, rows)


def percentage(value: float, digits: int = 1) -> str:
    """Format a [0, 1] fraction as a percent string."""
    return f"{value * 100:.{digits}f}%"

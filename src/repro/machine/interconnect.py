"""Interconnection network model.

Each node owns a network interface; a remote miss crosses the requester's
interface outbound and the home node's interface inbound (and the reply
crosses them the other way, folded into the same occupancy charge).  Link
occupancy drives utilisation-window queuing, which supplies the "average
network queue length for remote requests" statistic of Section 7.1.2.

``hop_ns`` is a pure propagation delay already included in the configured
minimum remote latency; this module only *adds* queuing delay beyond the
minimum and collects statistics.
"""

from __future__ import annotations

from typing import List

from repro.machine.config import MachineConfig
from repro.machine.contention import UtilisationWindow


class Interconnect:
    """Per-node network interfaces with utilisation-based queuing."""

    def __init__(self, config: MachineConfig, window_ns: int = 1_000_000) -> None:
        self.config = config
        net = config.network
        self._links: List[UtilisationWindow] = [
            UtilisationWindow(window_ns, net.max_utilisation)
            for _ in range(config.n_nodes)
        ]
        self._occupancy = net.link_occupancy_ns
        self.remote_requests = 0

    def traverse(self, now: int, src_node: int, dst_node: int, weight: int = 1) -> float:
        """Charge one remote request/reply pair; return added queuing delay (ns).

        ``src_node == dst_node`` is a local access and traverses nothing.
        """
        if src_node == dst_node:
            return 0.0
        self.remote_requests += weight
        delay = self._links[src_node].offer(now, self._occupancy, weight)
        delay += self._links[dst_node].offer(now, self._occupancy, weight)
        return delay

    def average_queue_length(self, now: int) -> float:
        """Mean of per-link time-averaged queue lengths."""
        if not self._links:
            return 0.0
        return sum(l.average_queue_length(now) for l in self._links) / len(self._links)

    def max_link_utilisation(self) -> float:
        """Highest window utilisation seen on any link."""
        return max((l.max_utilisation_seen for l in self._links), default=0.0)

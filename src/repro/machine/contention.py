"""Utilisation-window contention model shared by controllers and links.

The full-system simulator works at cache-miss granularity with weighted
records, so strict busy-until queuing would over-serialise (a weight-w
record stands for w misses *spread over* w miss latencies from a single
CPU, not w back-to-back arrivals).  Instead each shared resource tracks the
occupancy work offered to it in fixed windows of simulated time and charges
an M/M/1-style queuing delay based on the utilisation of the previous
window:

    delay_per_request = occupancy * rho / (1 - rho)

with ``rho`` capped below 1.  Using the *previous* window keeps the model
deterministic and independent of intra-window event order.  The same object
reports the statistics Section 7.1.2 quotes: request counts, time-averaged
queue length and maximum observed occupancy (utilisation).
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError


class UtilisationWindow:
    """Occupancy-driven queuing model for one shared resource."""

    def __init__(
        self,
        window_ns: int = 1_000_000,
        max_utilisation: float = 0.95,
    ) -> None:
        if window_ns <= 0:
            raise ConfigurationError("window must be positive")
        if not 0.0 < max_utilisation < 1.0:
            raise ConfigurationError("max_utilisation must lie in (0, 1)")
        self._window_ns = window_ns
        self._max_rho = max_utilisation
        self._window_index = 0
        self._work_in_window = 0.0
        self._prev_rho = 0.0
        # statistics
        self.requests = 0
        self.total_busy_ns = 0.0
        self._rho_max = 0.0
        self._queue_area = 0.0     # integral of queue length over time
        self._last_advance = 0

    # -- internal -------------------------------------------------------------

    def _advance(self, now: int) -> None:
        index = now // self._window_ns
        if index == self._window_index:
            return
        # Close out current window.
        rho = min(self._work_in_window / self._window_ns, self._max_rho)
        self._rho_max = max(self._rho_max, rho)
        queue_len = rho / (1.0 - rho)
        self._queue_area += queue_len * self._window_ns
        # Any fully idle windows between contribute zero queue area.
        self._prev_rho = rho
        gap = index - self._window_index - 1
        if gap > 0:
            # Idle gap: previous utilisation decays to zero.
            self._prev_rho = 0.0
        self._window_index = index
        self._work_in_window = 0.0
        self._last_advance = now

    # -- public ----------------------------------------------------------------

    def offer(self, now: int, occupancy_ns: float, weight: int = 1) -> float:
        """Record ``weight`` requests each busying the resource for
        ``occupancy_ns``; return the queuing delay charged *per request*.
        """
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        if occupancy_ns < 0:
            raise ConfigurationError("occupancy must be non-negative")
        self._advance(now)
        self._work_in_window += occupancy_ns * weight
        self.requests += weight
        self.total_busy_ns += occupancy_ns * weight
        rho = min(self._prev_rho, self._max_rho)
        return occupancy_ns * rho / (1.0 - rho)

    def utilisation(self) -> float:
        """Utilisation of the most recently completed window."""
        return self._prev_rho

    @property
    def max_utilisation_seen(self) -> float:
        """Highest window utilisation observed so far."""
        return self._rho_max

    def register_metrics(self, registry, name: str) -> None:
        """Expose this resource's statistics under ``name`` in a registry.

        Registration is callback-based, so the hot :meth:`offer` path is
        untouched; values are read when the registry collects.
        """
        registry.register_callback(f"{name}.requests", lambda: self.requests)
        registry.register_callback(
            f"{name}.total_busy_ns", lambda: self.total_busy_ns
        )
        registry.register_callback(
            f"{name}.max_utilisation", lambda: self.max_utilisation_seen
        )

    def average_queue_length(self, now: int) -> float:
        """Time-averaged queue length over [0, now]."""
        if now <= 0:
            return 0.0
        # Include the (possibly partial) current window at its running rate.
        elapsed_in_window = now - self._window_index * self._window_ns
        area = self._queue_area
        if elapsed_in_window > 0:
            rho = min(
                self._work_in_window / max(elapsed_in_window, 1), self._max_rho
            )
            area += rho / (1.0 - rho) * elapsed_in_window
        return area / now

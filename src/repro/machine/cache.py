"""Set-associative cache models.

The main simulation path works at secondary-cache-miss granularity (the
workload generators emit miss streams directly), but the cache substrate is
still implemented in full: it backs the TLB-vs-cache metric study, the
microbenchmark example, and the unit tests that validate the published
cache geometry (32 KB 2-way split L1, 512 KB 2-way unified L2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.machine.config import CacheConfig


class SetAssociativeCache:
    """An LRU set-associative cache over physical addresses.

    Each set is an ordered dict mapping tag -> dirty flag, with least
    recently used entries first.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _index_and_tag(self, addr: int) -> tuple:
        line = addr // self.config.line_size
        return line % self.config.n_sets, line // self.config.n_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Access byte address ``addr``; return True on a hit.

        On a miss the line is filled, evicting LRU and counting a
        writeback if the victim was dirty.
        """
        index, tag = self._index_and_tag(addr)
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            if write:
                entries[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.config.associativity:
            _, victim_dirty = entries.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
        entries[tag] = write
        return False

    def contains(self, addr: int) -> bool:
        """True when the line holding ``addr`` is resident (no LRU update)."""
        index, tag = self._index_and_tag(addr)
        return tag in self._sets[index]

    def invalidate_line(self, addr: int) -> bool:
        """Drop the line holding ``addr``; return True if it was present."""
        index, tag = self._index_and_tag(addr)
        return self._sets[index].pop(tag, None) is not None

    def invalidate_all(self) -> None:
        """Empty the cache (e.g. across a simulated context loss)."""
        for entries in self._sets:
            entries.clear()

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        """Misses / accesses over the cache's lifetime (0.0 if unused)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """Split L1 I/D over a unified L2, as on the paper's machine.

    :meth:`access` walks an instruction or data reference down the
    hierarchy and reports which level it hit, so callers can convert
    reference streams to latency or to L2 miss streams.
    """

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"

    def __init__(
        self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
    ) -> None:
        self.l1i = SetAssociativeCache(l1i)
        self.l1d = SetAssociativeCache(l1d)
        self.l2 = SetAssociativeCache(l2)

    def access(self, addr: int, write: bool = False, instruction: bool = False) -> str:
        """Return the level that satisfied the reference."""
        l1 = self.l1i if instruction else self.l1d
        if l1.access(addr, write=write):
            return self.L1
        if self.l2.access(addr, write=write):
            return self.L2
        return self.MEMORY

    def l2_misses(self) -> int:
        """Secondary-cache misses so far (the quantity the policy counts)."""
        return self.l2.misses

    def flush(self) -> None:
        """Invalidate every level."""
        self.l1i.invalidate_all()
        self.l1d.invalidate_all()
        self.l2.invalidate_all()


def page_working_set_misses(
    cache: SetAssociativeCache,
    page_addresses: Dict[int, int],
    page_size: int,
    rounds: int = 1,
    lines_per_page: Optional[int] = None,
) -> Dict[int, int]:
    """Replay a uniform sweep over pages and report misses per page.

    A testing/characterisation helper: each round touches every line of
    every page once (or ``lines_per_page`` lines), in page order.  Returns
    the miss count attributed to each page id.
    """
    line = cache.config.line_size
    per_page = lines_per_page or page_size // line
    misses: Dict[int, int] = {page: 0 for page in page_addresses}
    for _ in range(rounds):
        for page, base in page_addresses.items():
            for i in range(per_page):
                if not cache.access(base + i * line):
                    misses[page] += 1
    return misses

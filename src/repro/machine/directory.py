"""Directory-controller miss counting, sampling and hot-page interrupts.

On FLASH the directory controller (MAGIC) runs software handlers on every
cache miss; the paper extends those handlers to keep a per-page, per-CPU
miss counter and to interrupt a processor when a counter crosses the
trigger threshold within a reset interval.  To amortise interrupt and TLB
flush costs the controller batches several hot pages per interrupt
(Section 4).  Sampling (Section 8.3, 1-in-10) is implemented with exact
weight accounting so a sampled counter sees, in expectation *and* in
long-run total, 1/N of the offered misses.

The counters also answer the space-overhead arithmetic of Section 7.2.1,
exposed by :func:`counter_space_overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.units import PAGE_SIZE
from repro.obs.events import HotPageTriggered
from repro.obs.tracer import as_tracer


class PageCounters:
    """Hardware counters for one logical page.

    ``miss`` is a plain Python list: the replay hot path increments one
    slot per counted miss, and list indexing avoids boxing a numpy
    scalar on every touch (a measurable win at trace scale).
    """

    __slots__ = ("miss", "writes", "migrates")

    def __init__(self, n_cpus: int) -> None:
        self.miss = [0] * n_cpus
        self.writes = 0
        self.migrates = 0

    def hottest_other_cpu(self, cpu: int) -> Tuple[int, int]:
        """(cpu, count) of the highest miss counter excluding ``cpu``."""
        best_cpu, best = -1, -1
        for other, count in enumerate(self.miss):
            if other == cpu:
                continue
            if count > best:
                best_cpu, best = other, int(count)
        return best_cpu, best


class MissCounterBank:
    """Per-page counter storage with periodic reset.

    Pages are tracked lazily: a page with no counted miss this interval
    costs nothing, which mirrors the paper's observation that only hot
    pages matter.
    """

    def __init__(self, n_cpus: int) -> None:
        if n_cpus <= 0:
            raise ConfigurationError("need at least one CPU")
        self.n_cpus = n_cpus
        self._pages: Dict[int, PageCounters] = {}
        self.resets = 0

    def record(self, page: int, cpu: int, weight: int = 1, is_write: bool = False) -> int:
        """Add ``weight`` misses from ``cpu`` to ``page``; return the new count."""
        counters = self._pages.get(page)
        if counters is None:
            counters = self._pages[page] = PageCounters(self.n_cpus)
        miss = counters.miss
        count = miss[cpu] + weight
        miss[cpu] = count
        if is_write:
            counters.writes += weight
        return count

    def add_writes(self, page: int, weight: int) -> None:
        """Credit write misses without touching the per-CPU counts.

        Used by the vectorized engine's batched write-back, which sums
        a segment's write weights per page instead of recording them
        event by event.
        """
        counters = self._pages.get(page)
        if counters is None:
            counters = self._pages[page] = PageCounters(self.n_cpus)
        counters.writes += weight

    def note_migration(self, page: int) -> None:
        """Bump the page's migrate counter (set by the pager on migration)."""
        counters = self._pages.get(page)
        if counters is None:
            counters = self._pages[page] = PageCounters(self.n_cpus)
        counters.migrates += 1

    def get(self, page: int) -> Optional[PageCounters]:
        """Counters for ``page`` this interval, or None if untouched."""
        return self._pages.get(page)

    def clear_page(self, page: int) -> None:
        """Reset one page's counters (after the pager acts on it)."""
        counters = self._pages.get(page)
        if counters is None:
            return
        migrates = counters.migrates
        self._pages[page] = PageCounters(self.n_cpus)
        # Migration history survives within the interval so the migrate
        # threshold can damp ping-ponging.
        self._pages[page].migrates = migrates

    def reset(self) -> None:
        """Interval reset: drop every counter (including migrate counts)."""
        self._pages.clear()
        self.resets += 1

    @property
    def tracked_pages(self) -> int:
        """Pages with live counters this interval."""
        return len(self._pages)


class SamplingAccumulator:
    """Exact 1-in-N sampling of weighted miss streams.

    Carries a per-CPU remainder so that over any long run the counted
    weight equals ``floor(total/N)`` — deterministic, order-independent for
    a single CPU's stream, and free of RNG state.
    """

    def __init__(self, n_cpus: int, rate: int) -> None:
        if rate <= 0:
            raise ConfigurationError("sampling rate must be >= 1")
        self.rate = rate
        self._carry = [0] * n_cpus

    def sample(self, cpu: int, weight: int) -> int:
        """Weight that survives sampling for this record."""
        rate = self.rate
        if rate == 1:
            return weight
        carry = self._carry
        counted, carry[cpu] = divmod(carry[cpu] + weight, rate)
        return counted


@dataclass
class HotPageEvent:
    """A page whose counter crossed the trigger threshold."""

    page: int
    cpu: int               # the CPU whose counter triggered
    count: int             # counter value at trigger time
    process: int = -1      # process running on the CPU at trigger time


@dataclass
class HotBatch:
    """A pager interrupt: several hot pages delivered together."""

    cpu: int                           # CPU taking the interrupt
    events: List[HotPageEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)


class DirectoryArray:
    """Machine-wide hot-page detection built on the counter bank.

    ``locator`` maps (page, cpu) to the node the CPU's mapping of the page
    currently resides on; the directory only raises interrupts for misses
    that are remote to the triggering CPU (a local hot page needs no
    action, as in the paper's decision tree node 1).
    """

    def __init__(
        self,
        n_cpus: int,
        trigger_threshold: int = 128,
        sampling_rate: int = 1,
        batch_pages: int = 4,
        tracer=None,
    ) -> None:
        if trigger_threshold <= 0:
            raise ConfigurationError("trigger threshold must be positive")
        if batch_pages <= 0:
            raise ConfigurationError("batch size must be positive")
        self.bank = MissCounterBank(n_cpus)
        self.sampler = SamplingAccumulator(n_cpus, sampling_rate)
        self.trigger_threshold = trigger_threshold
        self.batch_pages = batch_pages
        self.tracer = as_tracer(tracer)
        self._pending: Dict[int, List[HotPageEvent]] = {}
        self._armed: Dict[int, bool] = {}
        self.triggers = 0
        self.sampled_misses = 0
        self.offered_misses = 0

    def register_metrics(self, registry) -> None:
        """Expose the controller's counters under ``machine.directory``."""
        registry.register_callback(
            "machine.directory.triggers", lambda: self.triggers
        )
        registry.register_callback(
            "machine.directory.offered_misses", lambda: self.offered_misses
        )
        registry.register_callback(
            "machine.directory.sampled_misses", lambda: self.sampled_misses
        )
        registry.register_callback(
            "machine.directory.interval_resets", lambda: self.bank.resets
        )
        registry.register_callback(
            "machine.directory.tracked_pages", lambda: self.bank.tracked_pages
        )
        registry.register_callback(
            "machine.directory.trigger_threshold",
            lambda: self.trigger_threshold,
        )

    def observe(
        self,
        page: int,
        cpu: int,
        is_write: bool,
        weight: int = 1,
        is_local: bool = False,
        process: int = -1,
        now_ns: int = 0,
    ) -> Optional[HotBatch]:
        """Count a miss; return a full interrupt batch when one is ready.

        ``is_local`` tells the controller whether the missing CPU's copy of
        the page is already in its local memory; local hot pages need no
        pager attention (decision-tree node 1).
        """
        self.offered_misses += weight
        counted = self.sampler.sample(cpu, weight)
        if counted == 0:
            return None
        self.sampled_misses += counted
        count = self.bank.record(page, cpu, counted, is_write)
        if count < self.trigger_threshold:
            return None
        if self._armed.get(page):
            return None  # already queued for the pager this interval
        if is_local:
            return None  # hot but already local: nothing to gain
        self._armed[page] = True
        self.triggers += 1
        if self.tracer.active:
            self.tracer.emit(
                HotPageTriggered(
                    t=now_ns,
                    page=page,
                    cpu=cpu,
                    count=count,
                    threshold=self.trigger_threshold,
                )
            )
        pending = self._pending.setdefault(cpu, [])
        pending.append(
            HotPageEvent(page=page, cpu=cpu, count=count, process=process)
        )
        if len(pending) >= self.batch_pages:
            return self._make_batch(cpu)
        return None

    def latch(self, page: int) -> None:
        """Keep ``page`` armed (no re-interrupt) until the next reset.

        The pager calls this after a no-action decision so a page the tree
        rejected (e.g. write-shared) doesn't interrupt again every miss.
        """
        self._armed[page] = True

    def _make_batch(self, cpu: int) -> HotBatch:
        events = self._pending.pop(cpu, [])
        for event in events:
            self._armed.pop(event.page, None)
        return HotBatch(cpu=cpu, events=events)

    def drain(self) -> List[HotBatch]:
        """Flush all partially filled batches (end of interval / of run)."""
        batches = [self._make_batch(cpu) for cpu in sorted(self._pending)]
        return [b for b in batches if len(b)]

    def interval_reset(self) -> None:
        """Reset-interval expiry: clear counters and pending state."""
        self.bank.reset()
        self._pending.clear()
        self._armed.clear()

    def acted_on(self, page: int) -> None:
        """Pager handled ``page``; restart its counting afresh."""
        self.bank.clear_page(page)
        self._armed.pop(page, None)


def counter_space_overhead(
    n_nodes: int,
    counter_bytes: int = 1,
    page_size: int = PAGE_SIZE,
    grouped_cpus: int = 1,
) -> float:
    """Fractional memory overhead of the per-page per-CPU counters.

    Reproduces the arithmetic of Section 7.2.1: one counter per processor
    per page (optionally shared across groups of ``grouped_cpus``
    processors, or halved to ``counter_bytes=0.5`` under sampling).

    >>> round(counter_space_overhead(8) * 100, 1)          # 8 nodes
    0.2
    >>> round(counter_space_overhead(128) * 100, 1)        # 128 nodes
    3.1
    >>> round(counter_space_overhead(128, 0.5) * 100, 1)   # sampled, half-size
    1.6
    """
    if n_nodes <= 0 or grouped_cpus <= 0:
        raise ConfigurationError("node and group counts must be positive")
    counters_per_page = -(-n_nodes // grouped_cpus)
    return counters_per_page * counter_bytes / page_size

"""Machine parameter dataclasses for the simulated FLASH-like CC-NUMA box.

The defaults reproduce the configuration of Section 5 of the paper:

* 8 processors at 300 MHz, one per node, 64-entry TLBs;
* 32 KB 2-way split first-level caches with a 1-cycle hit;
* 512 KB 2-way unified secondary cache with a 50 ns hit time;
* 300 ns minimum local miss latency, 1200 ns minimum remote latency for
  CC-NUMA and 3000 ns for CC-NOW (the extra ~2000 ns models 1000 ft of
  fiber).

Use :meth:`MachineConfig.flash_ccnuma`, :meth:`MachineConfig.flash_ccnow`
and :meth:`MachineConfig.zero_network` for the three configurations the
paper evaluates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import KB, PAGE_SIZE


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    associativity: int
    line_size: int
    hit_ns: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_size <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache dimensions must be positive")
        n_lines = self.size_bytes // self.line_size
        if n_lines * self.line_size != self.size_bytes:
            raise ConfigurationError("cache size must be a multiple of line size")
        if n_lines % self.associativity != 0:
            raise ConfigurationError(
                "line count must be divisible by associativity"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // self.line_size // self.associativity


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry (fully associative, LRU, as a MIPS R4000-class TLB)."""

    entries: int = 64

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("TLB must have at least one entry")


@dataclass(frozen=True)
class MemoryConfig:
    """NUMA memory latencies and per-node capacity.

    ``controller_occupancy_ns`` is the time the home directory controller
    is busy servicing one miss; it is the source of the queuing delays the
    paper observes (a 2279 ns measured remote latency against a 1200 ns
    minimum, Section 7.1.3).
    """

    local_ns: int = 300
    remote_ns: int = 1200
    frames_per_node: int = 4096          # 16 MB of 4 KB frames per node
    controller_occupancy_ns: int = 160
    remote_extra_occupancy_ns: int = 90  # extra home-node work for remote misses

    def __post_init__(self) -> None:
        if self.local_ns <= 0 or self.remote_ns <= 0:
            raise ConfigurationError("memory latencies must be positive")
        if self.remote_ns < self.local_ns:
            raise ConfigurationError("remote latency cannot be below local")
        if self.frames_per_node <= 0:
            raise ConfigurationError("nodes need at least one frame")
        if self.controller_occupancy_ns < 0 or self.remote_extra_occupancy_ns < 0:
            raise ConfigurationError("occupancies must be non-negative")


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect delay model.

    The one-way ``hop_ns`` is already folded into ``MemoryConfig.remote_ns``
    as a *minimum*; the network model adds utilisation-dependent queuing on
    top and tracks the queue-length statistics of Section 7.1.2.
    """

    hop_ns: int = 200
    link_occupancy_ns: int = 60
    max_utilisation: float = 0.95

    def __post_init__(self) -> None:
        if self.hop_ns < 0 or self.link_occupancy_ns < 0:
            raise ConfigurationError("network delays must be non-negative")
        if not 0.0 < self.max_utilisation < 1.0:
            raise ConfigurationError("max_utilisation must lie in (0, 1)")


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of the simulated machine."""

    n_cpus: int = 8
    n_nodes: int = 8
    cpu_mhz: int = 300
    page_size: int = PAGE_SIZE
    l1i: CacheConfig = CacheConfig(32 * KB, 2, 32, hit_ns=3.3)
    l1d: CacheConfig = CacheConfig(32 * KB, 2, 32, hit_ns=3.3)
    l2: CacheConfig = CacheConfig(512 * KB, 2, 128, hit_ns=50.0)
    tlb: TlbConfig = TlbConfig(64)
    memory: MemoryConfig = MemoryConfig()
    network: NetworkConfig = NetworkConfig()

    def __post_init__(self) -> None:
        if self.n_cpus <= 0 or self.n_nodes <= 0:
            raise ConfigurationError("need at least one CPU and one node")
        if self.n_cpus % self.n_nodes != 0:
            raise ConfigurationError("CPUs must divide evenly across nodes")
        if self.page_size <= 0:
            raise ConfigurationError("page size must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def cpus_per_node(self) -> int:
        """Processors per NUMA node (1 on FLASH)."""
        return self.n_cpus // self.n_nodes

    def node_of_cpu(self, cpu: int) -> int:
        """Home node of ``cpu``."""
        if not 0 <= cpu < self.n_cpus:
            raise ConfigurationError(f"cpu {cpu} out of range")
        return cpu // self.cpus_per_node

    def cpus_of_node(self, node: int) -> range:
        """CPU ids resident on ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(f"node {node} out of range")
        per = self.cpus_per_node
        return range(node * per, (node + 1) * per)

    @property
    def total_frames(self) -> int:
        """Machine-wide page-frame count."""
        return self.memory.frames_per_node * self.n_nodes

    @property
    def total_memory_bytes(self) -> int:
        """Machine-wide physical memory."""
        return self.total_frames * self.page_size

    @property
    def remote_to_local_ratio(self) -> float:
        """Minimum remote:local latency ratio (4:1 for CC-NUMA here)."""
        return self.memory.remote_ns / self.memory.local_ns

    # -- canonical configurations -------------------------------------------

    @classmethod
    def flash_ccnuma(cls, **overrides) -> "MachineConfig":
        """The 8-processor CC-NUMA FLASH configuration of Section 5."""
        return cls(**overrides)

    @classmethod
    def flash_ccnow(cls, **overrides) -> "MachineConfig":
        """CC-NOW variant: 3000 ns minimum remote latency (Section 7.1.3)."""
        memory = overrides.pop(
            "memory", MemoryConfig(remote_ns=3000)
        )
        network = overrides.pop("network", NetworkConfig(hop_ns=1100))
        return cls(memory=memory, network=network, **overrides)

    @classmethod
    def zero_network(cls, **overrides) -> "MachineConfig":
        """Zero interconnect delay setup used in Section 7.1.2.

        Remote latency collapses to the local latency plus only the home
        controller occupancy; any remaining benefit of locality comes from
        contention, which is the point of the experiment.
        """
        memory = overrides.pop(
            "memory",
            MemoryConfig(remote_ns=300, controller_occupancy_ns=160,
                         remote_extra_occupancy_ns=90),
        )
        network = overrides.pop("network", NetworkConfig(hop_ns=0))
        return cls(memory=memory, network=network, **overrides)

    def with_memory(self, **changes) -> "MachineConfig":
        """Return a copy with ``MemoryConfig`` fields replaced."""
        return dataclasses.replace(
            self, memory=dataclasses.replace(self.memory, **changes)
        )

    def with_network(self, **changes) -> "MachineConfig":
        """Return a copy with ``NetworkConfig`` fields replaced."""
        return dataclasses.replace(
            self, network=dataclasses.replace(self.network, **changes)
        )

"""The NUMA memory system: per-node directory controllers and latencies.

A secondary-cache miss is serviced by the directory controller of the node
holding the frame ("home").  The latency charged is

    minimum latency (local or remote)
  + home controller queuing delay (utilisation model)
  + network queuing delay (for remote misses)

which reproduces the paper's observation that measured remote latency
(2279 ns) substantially exceeds the 1200 ns minimum because of controller
occupancy, and that improving locality lowers even *local* miss latency by
reducing contention (Section 7.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.stats import OnlineStats
from repro.machine.config import MachineConfig
from repro.machine.contention import UtilisationWindow
from repro.machine.interconnect import Interconnect


@dataclass
class MissService:
    """Outcome of servicing one (possibly weighted) miss."""

    latency_ns: float          # per-miss latency including queuing
    is_remote: bool
    queue_delay_ns: float      # queuing component per miss


class NumaMemorySystem:
    """Latency and contention model for the machine's memory."""

    def __init__(self, config: MachineConfig, window_ns: int = 1_000_000) -> None:
        self.config = config
        self.interconnect = Interconnect(config, window_ns)
        mem = config.memory
        self._controllers: List[UtilisationWindow] = [
            UtilisationWindow(window_ns, config.network.max_utilisation)
            for _ in range(config.n_nodes)
        ]
        self._occupancy = mem.controller_occupancy_ns
        self._remote_extra = mem.remote_extra_occupancy_ns
        # statistics
        self.local_latency = OnlineStats()
        self.remote_latency = OnlineStats()
        self.remote_handler_invocations = 0
        self.local_misses = 0
        self.remote_misses = 0

    def service_miss(
        self, now: int, cpu: int, home_node: int, weight: int = 1
    ) -> MissService:
        """Service ``weight`` identical misses from ``cpu`` to ``home_node``."""
        cpu_node = self.config.node_of_cpu(cpu)
        remote = cpu_node != home_node
        mem = self.config.memory
        occupancy = self._occupancy + (self._remote_extra if remote else 0)
        queue = self._controllers[home_node].offer(now, occupancy, weight)
        if remote:
            # The requester-side controller also does work to forward the
            # request (MAGIC runs a handler on both ends).
            queue += self._controllers[cpu_node].offer(
                now, self._remote_extra, weight
            )
            queue += self.interconnect.traverse(now, cpu_node, home_node, weight)
            base = mem.remote_ns
            self.remote_misses += weight
            self.remote_handler_invocations += weight
        else:
            base = mem.local_ns
            self.local_misses += weight
        latency = base + queue
        (self.remote_latency if remote else self.local_latency).add(
            latency, weight
        )
        return MissService(latency_ns=latency, is_remote=remote, queue_delay_ns=queue)

    # -- observability -----------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Register the memory system's statistics under ``machine.memory``.

        Counters are exposed as collect-time callbacks over the existing
        attributes and the live latency accumulators join a labeled
        histogram family, so servicing misses costs nothing extra.
        """
        registry.register_callback(
            "machine.memory.local_misses", lambda: self.local_misses
        )
        registry.register_callback(
            "machine.memory.remote_misses", lambda: self.remote_misses
        )
        registry.register_callback(
            "machine.memory.total_misses", lambda: self.total_misses
        )
        registry.register_callback(
            "machine.memory.local_fraction", lambda: self.local_fraction
        )
        registry.register_callback(
            "machine.memory.remote_handler_invocations",
            lambda: self.remote_handler_invocations,
        )
        registry.register_callback(
            "machine.memory.max_controller_occupancy",
            self.max_controller_occupancy,
        )
        family = registry.family("machine.memory.latency_ns")
        family.attach(self.local_latency, kind="local")
        family.attach(self.remote_latency, kind="remote")
        for node, controller in enumerate(self._controllers):
            controller.register_metrics(registry, f"machine.controller.node{node}")

    # -- section 7.1.2 statistics ------------------------------------------

    def max_controller_occupancy(self) -> float:
        """Highest directory-controller window utilisation observed."""
        return max((c.max_utilisation_seen for c in self._controllers), default=0.0)

    def average_network_queue_length(self, now: int) -> float:
        """Time-averaged interconnect queue length."""
        return self.interconnect.average_queue_length(now)

    def average_local_latency(self) -> float:
        """Mean serviced local-miss latency (ns)."""
        return self.local_latency.mean

    def average_remote_latency(self) -> float:
        """Mean serviced remote-miss latency (ns)."""
        return self.remote_latency.mean

    @property
    def total_misses(self) -> int:
        """All misses serviced so far."""
        return self.local_misses + self.remote_misses

    @property
    def local_fraction(self) -> float:
        """Fraction of misses satisfied from local memory."""
        total = self.total_misses
        return self.local_misses / total if total else 0.0

"""The CC-NUMA hardware substrate: caches, TLBs, memory, directory."""

from repro.machine.cache import CacheHierarchy, SetAssociativeCache
from repro.machine.config import (
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    TlbConfig,
)
from repro.machine.contention import UtilisationWindow
from repro.machine.directory import (
    DirectoryArray,
    HotBatch,
    HotPageEvent,
    MissCounterBank,
    PageCounters,
    SamplingAccumulator,
    counter_space_overhead,
)
from repro.machine.interconnect import Interconnect
from repro.machine.memory import MissService, NumaMemorySystem
from repro.machine.tlb import Tlb, TlbArray

__all__ = [
    "CacheHierarchy",
    "SetAssociativeCache",
    "CacheConfig",
    "MachineConfig",
    "MemoryConfig",
    "NetworkConfig",
    "TlbConfig",
    "UtilisationWindow",
    "DirectoryArray",
    "HotBatch",
    "HotPageEvent",
    "MissCounterBank",
    "PageCounters",
    "SamplingAccumulator",
    "counter_space_overhead",
    "Interconnect",
    "MissService",
    "NumaMemorySystem",
    "Tlb",
    "TlbArray",
]

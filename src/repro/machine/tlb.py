"""TLB model: 64-entry fully associative LRU, with shootdown support.

The paper's machine reloads TLBs in software, which is why TLB misses are a
candidate (and, per Section 8.3, an inconsistent one) source of policy
information, and why TLB *flushes* dominate the kernel overhead of page
movement (Table 6).  The model supports both the whole-TLB flush IRIX
performs and the per-page flush used by the simulated "tracked mappings"
optimisation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.machine.config import TlbConfig


class Tlb:
    """One processor's TLB, mapping virtual page numbers."""

    def __init__(self, config: Optional[TlbConfig] = None) -> None:
        self.config = config or TlbConfig()
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.page_flushes = 0

    def access(self, vpn: int) -> bool:
        """Translate ``vpn``; return True on a hit, filling on a miss."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.config.entries:
            self._entries.popitem(last=False)
        self._entries[vpn] = True
        return False

    def contains(self, vpn: int) -> bool:
        """True when ``vpn`` is resident (no LRU update)."""
        return vpn in self._entries

    def flush(self) -> None:
        """Invalidate every entry (the IRIX whole-TLB shootdown)."""
        self._entries.clear()
        self.flushes += 1

    def flush_page(self, vpn: int) -> bool:
        """Invalidate one mapping; return True if it was resident."""
        self.page_flushes += 1
        return self._entries.pop(vpn, None) is not None

    @property
    def occupancy(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    @property
    def miss_rate(self) -> float:
        """Misses / accesses over the TLB's lifetime (0.0 if unused)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class TlbArray:
    """The machine's set of per-CPU TLBs, with broadcast flush."""

    def __init__(self, n_cpus: int, config: Optional[TlbConfig] = None) -> None:
        self.tlbs: List[Tlb] = [Tlb(config) for _ in range(n_cpus)]

    def __getitem__(self, cpu: int) -> Tlb:
        return self.tlbs[cpu]

    def __len__(self) -> int:
        return len(self.tlbs)

    def flush_all(self) -> int:
        """Flush every TLB (returns the number of TLBs flushed)."""
        for tlb in self.tlbs:
            tlb.flush()
        return len(self.tlbs)

    def flush_cpus(self, cpus) -> int:
        """Flush only the listed CPUs' TLBs (tracked-mapping optimisation)."""
        count = 0
        for cpu in cpus:
            self.tlbs[cpu].flush()
            count += 1
        return count

    def total_misses(self) -> int:
        """Sum of TLB misses across CPUs."""
        return sum(t.misses for t in self.tlbs)

"""Columnar secondary-cache-miss traces.

Section 8 of the paper drives a policy simulator from SimOS-generated
traces containing every secondary-cache miss (user and kernel) with the
processor and a timestamp.  Our traces carry the same information in
columnar ``numpy`` arrays, with one extension: a ``weight`` per record —
the number of consecutive identical misses the record stands for — which
keeps Python-side record counts tractable at the paper's miss volumes.

Flags encode write/instruction/kernel status as a bitfield.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Union

import numpy as np

from repro.common.errors import TraceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.spec import WorkloadSpec

FLAG_WRITE = 0x1
FLAG_INSTR = 0x2
FLAG_KERNEL = 0x4


@dataclass(frozen=True)
class MissRecord:
    """One weighted miss record (a convenience view of a trace row)."""

    time_ns: int
    cpu: int
    process: int
    page: int
    weight: int
    is_write: bool
    is_instr: bool
    is_kernel: bool


class Trace:
    """An immutable, time-sorted weighted miss trace."""

    def __init__(
        self,
        time_ns: np.ndarray,
        cpu: np.ndarray,
        process: np.ndarray,
        page: np.ndarray,
        weight: np.ndarray,
        flags: np.ndarray,
        meta: Optional["WorkloadSpec"] = None,
        validate: bool = True,
    ) -> None:
        self.time_ns = np.asarray(time_ns, dtype=np.int64)
        self.cpu = np.asarray(cpu, dtype=np.int16)
        self.process = np.asarray(process, dtype=np.int32)
        self.page = np.asarray(page, dtype=np.int64)
        self.weight = np.asarray(weight, dtype=np.int64)
        self.flags = np.asarray(flags, dtype=np.uint8)
        self.meta = meta
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = len(self.time_ns)
        for name in ("cpu", "process", "page", "weight", "flags"):
            if len(getattr(self, name)) != n:
                raise TraceError(f"column {name} length mismatch")
        if n and np.any(np.diff(self.time_ns) < 0):
            raise TraceError("trace timestamps must be non-decreasing")
        if n and np.any(self.weight <= 0):
            raise TraceError("record weights must be positive")
        if n and np.any(self.page < 0):
            raise TraceError("page ids must be non-negative")

    # -- basic shape --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.time_ns)

    @property
    def total_misses(self) -> int:
        """Total represented misses (sum of weights)."""
        return int(self.weight.sum()) if len(self) else 0

    @property
    def duration_ns(self) -> int:
        """Span from first to last record."""
        if not len(self):
            return 0
        return int(self.time_ns[-1] - self.time_ns[0])

    @property
    def n_pages(self) -> int:
        """Distinct pages touched."""
        return int(len(np.unique(self.page))) if len(self) else 0

    # -- derived masks ---------------------------------------------------------------

    @property
    def is_write(self) -> np.ndarray:
        """Boolean mask of write records."""
        return (self.flags & FLAG_WRITE) != 0

    @property
    def is_instr(self) -> np.ndarray:
        """Boolean mask of instruction-fetch records."""
        return (self.flags & FLAG_INSTR) != 0

    @property
    def is_kernel(self) -> np.ndarray:
        """Boolean mask of kernel-mode records."""
        return (self.flags & FLAG_KERNEL) != 0

    # -- selection ---------------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "Trace":
        """A sub-trace of the records where ``mask`` is True."""
        return Trace(
            self.time_ns[mask],
            self.cpu[mask],
            self.process[mask],
            self.page[mask],
            self.weight[mask],
            self.flags[mask],
            meta=self.meta,
            validate=False,
        )

    def user_only(self) -> "Trace":
        """Records issued in user mode."""
        return self.select(~self.is_kernel)

    def kernel_only(self) -> "Trace":
        """Records issued in kernel mode."""
        return self.select(self.is_kernel)

    def data_only(self) -> "Trace":
        """Data (non-instruction) records."""
        return self.select(~self.is_instr)

    def instr_only(self) -> "Trace":
        """Instruction-fetch records."""
        return self.select(self.is_instr)

    # -- iteration ----------------------------------------------------------------------

    def records(self) -> Iterator[MissRecord]:
        """Iterate rows as :class:`MissRecord` (slow path; tests/analysis)."""
        write, instr, kernel = self.is_write, self.is_instr, self.is_kernel
        for i in range(len(self)):
            yield MissRecord(
                time_ns=int(self.time_ns[i]),
                cpu=int(self.cpu[i]),
                process=int(self.process[i]),
                page=int(self.page[i]),
                weight=int(self.weight[i]),
                is_write=bool(write[i]),
                is_instr=bool(instr[i]),
                is_kernel=bool(kernel[i]),
            )

    # -- aggregation ----------------------------------------------------------------------

    def misses_by_page_cpu(self, n_cpus: int) -> dict:
        """{page: per-CPU weighted miss vector} over the whole trace."""
        out: dict = {}
        pages, cpus, weights = self.page, self.cpu, self.weight
        for i in range(len(self)):
            vec = out.get(pages[i])
            if vec is None:
                vec = out[int(pages[i])] = np.zeros(n_cpus, dtype=np.int64)
            vec[cpus[i]] += weights[i]
        return out

    def max_page_id(self) -> int:
        """Largest page id present (-1 for an empty trace)."""
        return int(self.page.max()) if len(self) else -1

    # -- persistence --------------------------------------------------------------

    def meta_identity(self) -> Optional[dict]:
        """The workload identity of ``meta`` (name/scale/seed), if any."""
        identity = getattr(self.meta, "identity", None)
        if not callable(identity):
            return None
        try:
            return identity()
        except Exception:
            return None

    def save(self, path: Union[str, "os.PathLike"]) -> None:
        """Persist the trace as a compressed ``.npz`` archive.

        The workload spec's *identity* (name/scale/seed) travels with
        the archive, so :meth:`load` re-attaches a freshly built
        ``meta`` for named workloads; hand-built specs (no identity, or
        a name :func:`repro.workloads.build_spec` does not know) load
        with ``meta=None``.
        """
        arrays = {
            "time_ns": self.time_ns,
            "cpu": self.cpu,
            "process": self.process,
            "page": self.page,
            "weight": self.weight,
            "flags": self.flags,
        }
        identity = self.meta_identity()
        if identity is not None:
            arrays["meta_identity"] = np.array(
                json.dumps(identity, sort_keys=True)
            )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, "os.PathLike"]) -> "Trace":
        """Load a trace previously written by :meth:`save`.

        A persisted workload identity is rebuilt into a live ``meta``
        via :func:`repro.workloads.build_spec`; unknown or unreadable
        identities degrade to ``meta=None`` rather than failing.
        """
        with np.load(path) as data:
            trace = cls(
                data["time_ns"],
                data["cpu"],
                data["process"],
                data["page"],
                data["weight"],
                data["flags"],
            )
            if "meta_identity" in data.files:
                trace.meta = _rebuild_meta(str(data["meta_identity"][()]))
        return trace


class TraceBuilder:
    """Append-friendly trace construction."""

    def __init__(self, meta: Optional["WorkloadSpec"] = None) -> None:
        self._time: list = []
        self._cpu: list = []
        self._process: list = []
        self._page: list = []
        self._weight: list = []
        self._flags: list = []
        self.meta = meta

    def append(
        self,
        time_ns: int,
        cpu: int,
        process: int,
        page: int,
        weight: int = 1,
        is_write: bool = False,
        is_instr: bool = False,
        is_kernel: bool = False,
    ) -> None:
        """Add one record (records may be appended out of order)."""
        flags = (
            (FLAG_WRITE if is_write else 0)
            | (FLAG_INSTR if is_instr else 0)
            | (FLAG_KERNEL if is_kernel else 0)
        )
        self._time.append(time_ns)
        self._cpu.append(cpu)
        self._process.append(process)
        self._page.append(page)
        self._weight.append(weight)
        self._flags.append(flags)

    def __len__(self) -> int:
        return len(self._time)

    def build(self, sort: bool = True) -> Trace:
        """Produce the immutable trace, sorting by time by default."""
        time = np.asarray(self._time, dtype=np.int64)
        cpu = np.asarray(self._cpu, dtype=np.int16)
        process = np.asarray(self._process, dtype=np.int32)
        page = np.asarray(self._page, dtype=np.int64)
        weight = np.asarray(self._weight, dtype=np.int64)
        flags = np.asarray(self._flags, dtype=np.uint8)
        if sort and len(time):
            order = np.argsort(time, kind="stable")
            time, cpu, process = time[order], cpu[order], process[order]
            page, weight, flags = page[order], weight[order], flags[order]
        return Trace(time, cpu, process, page, weight, flags, meta=self.meta)


def _rebuild_meta(payload: str):
    """Rebuild a workload spec from a persisted identity JSON string.

    Returns ``None`` for anything unparseable or unknown — a loaded
    trace must never fail because its metadata aged out.
    """
    try:
        identity = json.loads(payload)
        name = identity["name"]
    except (ValueError, TypeError, KeyError):
        return None
    from repro.workloads import WORKLOAD_NAMES, build_spec

    if name not in WORKLOAD_NAMES:
        return None
    try:
        return build_spec(
            name,
            scale=float(identity.get("scale", 1.0)),
            seed=int(identity.get("seed", 0)),
        )
    except Exception:
        return None


def _merged_meta(traces: list):
    """The common ``meta`` of several traces, or ``None`` with a warning.

    Traces from the same workload (same object, or equal identities)
    keep their metadata; anything mixed drops it rather than silently
    stamping the merge with the first input's spec.
    """
    metas = [t.meta for t in traces]
    first = metas[0]
    if all(m is first for m in metas):
        return first
    identities = [t.meta_identity() for t in traces]
    if identities[0] is not None and all(
        ident == identities[0] for ident in identities
    ):
        return first
    warnings.warn(
        "merging traces with differing workload metadata; "
        "the merged trace carries meta=None",
        stacklevel=3,
    )
    return None


def merge_traces(traces: list) -> Trace:
    """Merge several traces into one time-sorted trace.

    The merged trace keeps its inputs' workload metadata only when they
    agree (same spec object or equal identities); mixed-workload merges
    carry ``meta=None`` and emit a warning.
    """
    traces = [t for t in traces if len(t)]
    if not traces:
        raise TraceError("nothing to merge")
    time = np.concatenate([t.time_ns for t in traces])
    order = np.argsort(time, kind="stable")
    meta = _merged_meta(traces)
    return Trace(
        time[order],
        np.concatenate([t.cpu for t in traces])[order],
        np.concatenate([t.process for t in traces])[order],
        np.concatenate([t.page for t in traces])[order],
        np.concatenate([t.weight for t in traces])[order],
        np.concatenate([t.flags for t in traces])[order],
        meta=meta,
    )

"""Trace-driven policy simulation with a contentionless memory model.

Reproduces the methodology of Section 8: each workload's secondary-cache
miss trace is replayed against a simple memory model (300 ns local miss,
1200 ns remote miss, 350 µs per migration/replication/collapse) under

* three static policies — round-robin, first-touch, post-facto — and
* three dynamic policies — migration-only, replication-only, combined —

optionally driven by approximate information (sampled cache misses or
TLB misses, Section 8.3).  Static policies are evaluated fully vectorised;
dynamic policies replay the merged driver/cost streams through the same
counter bank and decision tree the kernel implementation uses.
"""

from __future__ import annotations

import enum
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.common.errors import ConfigurationError, TraceError
from repro.common.units import US
from repro.machine.directory import MissCounterBank, SamplingAccumulator
from repro.obs.events import (
    CollapseEvent,
    HotPageTriggered,
    IntervalReset,
    MigrationDecision,
    MissServiced,
    NoActionDecision,
    ReplicationDecision,
    RunMeta,
)
from repro.obs.prof import as_profiler
from repro.obs.tracer import as_tracer
from repro.policy.decision import Action, decide
from repro.policy.metrics import FULL_CACHE, Metric
from repro.policy.parameters import PolicyParameters
from repro.policy.placement import (
    first_touch_placement,
    post_facto_placement,
    round_robin_placement,
    static_stall_ns,
)
from repro.sim.results import RESULT_SCHEMA_VERSION, check_schema
from repro.trace.record import Trace
from repro.trace.tlbsim import derive_tlb_trace, merged_tlb_stream


class StaticPolicy(enum.Enum):
    """The static placement strategies of Figure 6."""

    ROUND_ROBIN = "RR"
    FIRST_TOUCH = "FT"
    POST_FACTO = "PF"


#: Valid values of :attr:`PolicySimConfig.engine`.
REPLAY_ENGINES = ("auto", "scalar", "vector")


def _engine_from_env() -> str:
    """Default replay engine, overridable via ``REPRO_REPLAY_ENGINE``.

    Reading the environment in the field default means sweep workers —
    which build a fresh :class:`PolicySimConfig` in-process — pick up
    the engine chosen on the driver's command line with no extra
    plumbing (the environment is inherited across the pool).
    """
    return os.environ.get("REPRO_REPLAY_ENGINE", "auto")


@dataclass(frozen=True)
class PolicySimConfig:
    """Memory model parameters for the trace-driven simulator."""

    n_cpus: int = 8
    n_nodes: int = 8
    local_ns: int = 300
    remote_ns: int = 1200
    op_cost_ns: int = 350 * US     # cost of a migrate/replicate/collapse
    decision_delay_ns: int = 20_000_000
    """Delay between a counter crossing the trigger and the pager acting.

    The directory controller collects multiple hot pages before raising an
    interrupt (Section 4); with weighted trace records the delay also lets
    concurrent CPUs' misses be counted before the sharing test runs, which
    is what happens naturally in an unweighted miss stream.
    """

    pt_walk_local_ns: int = 1200
    """Stall charged per page-table walk satisfied by a node-local PT
    (a walk is a dependent chain of memory references, so it costs a
    multiple of a single miss; see :mod:`repro.ptpol`)."""

    pt_walk_remote_ns: int = 4800
    """Stall charged per walk that must reference a remote page table."""

    pt_span_pages: int = 512
    """Data pages mapped by one page-table page (4 KB of 8-byte PTEs);
    the granularity at which PT pages are homed and replicated."""

    engine: str = field(default_factory=_engine_from_env)
    """Dynamic-replay engine: ``"auto"``, ``"scalar"`` or ``"vector"``.

    ``"vector"`` selects the segmented batch engines of
    :mod:`repro.trace.fastpath` and :mod:`repro.ptpol.fastpath`
    (byte-identical results — event logs included, emitted through the
    batched buffer of :mod:`repro.obs.batch` — and much faster);
    ``"auto"`` (the default, overridable via ``REPRO_REPLAY_ENGINE``)
    always picks the vector engine.  ``"scalar"`` pins the reference
    core, mainly for the differential suites and for debugging.
    """

    def __post_init__(self) -> None:
        if self.n_cpus <= 0 or self.n_nodes <= 0:
            raise ConfigurationError("need positive CPU and node counts")
        if self.n_cpus % self.n_nodes != 0:
            raise ConfigurationError("CPUs must divide evenly across nodes")
        if self.local_ns <= 0 or self.remote_ns < self.local_ns:
            raise ConfigurationError("latencies must satisfy 0 < local <= remote")
        if self.op_cost_ns < 0:
            raise ConfigurationError("operation cost must be non-negative")
        if self.decision_delay_ns < 0:
            raise ConfigurationError("decision delay must be non-negative")
        if self.pt_walk_local_ns <= 0 or self.pt_walk_remote_ns < self.pt_walk_local_ns:
            raise ConfigurationError(
                "walk latencies must satisfy 0 < local <= remote"
            )
        if self.pt_span_pages <= 0:
            raise ConfigurationError("PT span must be positive")
        if self.engine not in REPLAY_ENGINES:
            raise ConfigurationError(
                f"unknown replay engine {self.engine!r}; "
                f"expected one of {REPLAY_ENGINES}"
            )

    def node_of_cpu(self, cpu: int) -> int:
        """Home node of ``cpu``."""
        return cpu // (self.n_cpus // self.n_nodes)


@dataclass
class PolicySimResult:
    """Outcome of one policy run over one trace."""

    label: str
    total_misses: int = 0
    local_misses: int = 0
    stall_ns: float = 0.0
    overhead_ns: float = 0.0
    migrations: int = 0
    replications: int = 0
    collapses: int = 0
    hot_events: int = 0
    no_actions: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def remote_misses(self) -> int:
        """Misses serviced from remote memory."""
        return self.total_misses - self.local_misses

    @property
    def local_fraction(self) -> float:
        """Fraction of misses serviced from local memory."""
        return self.local_misses / self.total_misses if self.total_misses else 0.0

    @property
    def local_stall_ns(self) -> float:
        """Stall attributable to local misses (under the fixed latencies)."""
        return float(self.extra.get("local_stall_ns", 0.0))

    @property
    def remote_stall_ns(self) -> float:
        """Stall attributable to remote misses."""
        return self.stall_ns - self.local_stall_ns

    def run_time_ns(self, other_ns: float = 0.0) -> float:
        """Execution time: fixed 'other' time + stall + movement overhead."""
        return other_ns + self.stall_ns + self.overhead_ns

    def normalised_to(self, baseline: "PolicySimResult", other_ns: float = 0.0) -> float:
        """Run time normalised to another policy's (Figure 6 style)."""
        base = baseline.run_time_ns(other_ns)
        return self.run_time_ns(other_ns) / base if base else 0.0

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict:
        """Versioned, JSON-safe snapshot (see :meth:`from_dict`)."""
        return {
            "kind": "trace",
            "schema_version": RESULT_SCHEMA_VERSION,
            "label": self.label,
            "total_misses": self.total_misses,
            "local_misses": self.local_misses,
            "stall_ns": self.stall_ns,
            "overhead_ns": self.overhead_ns,
            "migrations": self.migrations,
            "replications": self.replications,
            "collapses": self.collapses,
            "hot_events": self.hot_events,
            "no_actions": self.no_actions,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PolicySimResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises :class:`~repro.common.errors.ResultSchemaError` on a kind
        or schema-version mismatch.
        """
        check_schema(data, "trace")
        return cls(
            label=data["label"],
            total_misses=int(data["total_misses"]),
            local_misses=int(data["local_misses"]),
            stall_ns=float(data["stall_ns"]),
            overhead_ns=float(data["overhead_ns"]),
            migrations=int(data["migrations"]),
            replications=int(data["replications"]),
            collapses=int(data["collapses"]),
            hot_events=int(data["hot_events"]),
            no_actions=int(data["no_actions"]),
            extra={k: float(v) for k, v in data["extra"].items()},
        )


def _pager_act(
    now,
    page,
    cpu,
    copies,
    bank,
    armed,
    result,
    params,
    cpu_nodes,
    op_cost,
    tracer,
    trace_on,
):
    """Pager action once a hot page's interrupt is serviced.

    The one copy of the migrate/replicate/no-action state machine, shared
    by the scalar replay loop and the vectorized engine's hot-page
    sub-replay (:mod:`repro.trace.fastpath`) so the two cannot drift.
    ``cpu_nodes`` may be a numpy array or a plain list.
    """
    page_copies = copies[page]
    node = int(cpu_nodes[cpu])
    if node in page_copies:
        armed.discard(page)
        return  # became local while pending (another CPU acted)
    counters = bank.get(page)
    if counters is None:
        armed.discard(page)
        return  # counters cleared by a concurrent action
    decision = decide(
        counters.miss,
        counters.writes,
        counters.migrates,
        cpu,
        params,
        memory_pressure=False,
    )
    if decision.action is Action.MIGRATE and len(page_copies) == 1:
        dest = (
            int(cpu_nodes[decision.target_cpu])
            if decision.target_cpu is not None
            else node
        )
        if dest in page_copies:
            result.no_actions += 1
            if trace_on:
                tracer.emit(
                    NoActionDecision(
                        t=now, page=page, cpu=cpu,
                        reason="target-already-home",
                    )
                )
            return
        src = next(iter(page_copies))
        page_copies.clear()
        page_copies.add(dest)
        result.migrations += 1
        result.overhead_ns += op_cost
        bank.note_migration(page)
        bank.clear_page(page)
        armed.discard(page)
        if trace_on:
            tracer.emit(
                MigrationDecision(
                    t=now, page=page, cpu=cpu, src=src, dst=dest,
                    outcome="migrated", reason=decision.reason.value,
                    latency_ns=float(op_cost),
                )
            )
    elif decision.action is Action.REPLICATE:
        src = min(page_copies)
        page_copies.add(node)
        result.replications += 1
        result.overhead_ns += op_cost
        bank.clear_page(page)
        armed.discard(page)
        if trace_on:
            tracer.emit(
                ReplicationDecision(
                    t=now, page=page, cpu=cpu, src=src, dst=node,
                    outcome="replicated", reason=decision.reason.value,
                    latency_ns=float(op_cost),
                )
            )
    else:
        # No action: the page stays latched until the next reset so
        # the pager is not re-interrupted for it every miss.
        result.no_actions += 1
        if trace_on:
            tracer.emit(
                NoActionDecision(
                    t=now, page=page, cpu=cpu,
                    reason=decision.reason.value,
                )
            )


class _CompetitiveCore:
    """The [BGW89] competitive state machine, one event at a time.

    The single copy of the watermark/migrate/replicate logic, shared by
    the scalar loop and the vectorized engine's candidate sub-replay
    (:func:`repro.trace.fastpath.replay_competitive_vector`) so the two
    cannot drift.  Unlike the pager replay it needs no clock: no reset
    interval, no decision delay — actions fire synchronously at the
    event that crosses the break-even watermark.
    """

    __slots__ = (
        "result", "placement", "cpu_nodes", "copies", "remote_counts",
        "written", "break_even", "n_cpus", "local_ns", "remote_ns",
        "op_cost", "local_stall",
    )

    def __init__(self, config, result, placement, cpu_nodes, break_even):
        self.result = result
        self.placement = placement
        self.cpu_nodes = [int(n) for n in cpu_nodes]
        self.copies: Dict[int, Set[int]] = {}
        self.remote_counts: Dict[int, "np.ndarray"] = {}
        self.written: Set[int] = set()
        self.break_even = break_even
        self.n_cpus = config.n_cpus
        self.local_ns = config.local_ns
        self.remote_ns = config.remote_ns
        self.op_cost = config.op_cost_ns
        self.local_stall = 0.0

    def step(self, cpu: int, page: int, weight: int, is_write: bool) -> None:
        result = self.result
        page_copies = self.copies.get(page)
        if page_copies is None:
            page_copies = self.copies[page] = {int(self.placement[page])}
        node = self.cpu_nodes[cpu]
        if is_write:
            self.written.add(page)
            if len(page_copies) > 1:
                keep = node if node in page_copies else min(page_copies)
                page_copies.clear()
                page_copies.add(keep)
                result.collapses += 1
                result.overhead_ns += self.op_cost
        local = node in page_copies
        result.total_misses += weight
        if local:
            result.local_misses += weight
            result.stall_ns += weight * self.local_ns
            self.local_stall += weight * self.local_ns
            return
        result.stall_ns += weight * self.remote_ns
        counts = self.remote_counts.get(page)
        if counts is None:
            counts = self.remote_counts[page] = np.zeros(
                self.n_cpus, dtype=np.int64
            )
        counts[cpu] += weight
        if counts[cpu] < self.break_even:
            return
        result.hot_events += 1
        if page in self.written and len(page_copies) == 1:
            page_copies.clear()
            page_copies.add(node)
            result.migrations += 1
        else:
            page_copies.add(node)
            result.replications += 1
        result.overhead_ns += self.op_cost
        counts[:] = 0


class TracePolicySimulator:
    """Replay traces under static and dynamic placement policies."""

    def __init__(
        self,
        config: Optional[PolicySimConfig] = None,
        tracer=None,
        metrics=None,
        profiler=None,
    ) -> None:
        self.config = config or PolicySimConfig()
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self.profiler = as_profiler(profiler)
        self._cpu_nodes = np.asarray(
            [self.config.node_of_cpu(c) for c in range(self.config.n_cpus)],
            dtype=np.int64,
        )

    def _emit_run_meta(self, label: str, params=None, pt: bool = False) -> None:
        """Emit the run-context header event (once, at ``t=0``).

        Lets post-hoc consumers (``repro analyze``) redo the stall and
        cost arithmetic without the original config in hand.  ``pt``
        publishes the page-table walk latencies; runs without a PT
        model leave them at 0 so old logs and new logs read alike.
        """
        if not self.tracer.wants(RunMeta.KIND):
            return
        cfg = self.config
        self.tracer.emit(
            RunMeta(
                t=0,
                label=label,
                n_cpus=cfg.n_cpus,
                n_nodes=cfg.n_nodes,
                local_ns=float(cfg.local_ns),
                remote_ns=float(cfg.remote_ns),
                op_cost_ns=float(cfg.op_cost_ns),
                trigger=params.trigger_threshold if params is not None else 0,
                reset_interval_ns=(
                    params.reset_interval_ns if params is not None else 0
                ),
                engine=cfg.engine,
                pt_walk_local_ns=float(cfg.pt_walk_local_ns) if pt else 0.0,
                pt_walk_remote_ns=float(cfg.pt_walk_remote_ns) if pt else 0.0,
                pt_span_pages=cfg.pt_span_pages if pt else 0,
            )
        )

    def _resolve_engine(self, path: str = "dynamic") -> str:
        """Pick the replay engine for this run.

        Every replay path now has a vectorized twin, and an active
        tracer composes with the vector engines through batched
        emission (:mod:`repro.obs.batch`), so ``auto`` simply picks
        ``vector`` — there is no tracer-driven fallback and no
        vector+tracer error any more.  The choice lands in the
        aggregate ``replay.engine.<engine>`` counter and the per-path
        ``replay.engine.<path>.<engine>`` counter when a metrics
        registry is attached (``path`` is ``"dynamic"``, ``"chunks"``
        or ``"competitive"``; :mod:`repro.ptpol` counts under
        ``"ptpol"``); the historical ``replay.engine.fallback`` counter
        stays at zero.
        """
        engine = self.config.engine
        choice = "vector" if engine == "auto" else engine
        if self.metrics is not None:
            self.metrics.counter(f"replay.engine.{choice}").inc()
            self.metrics.counter(f"replay.engine.{path}.{choice}").inc()
        return choice

    # -- static policies ----------------------------------------------------------

    def placement_for(self, trace: Trace, policy: StaticPolicy) -> np.ndarray:
        """Page -> node array for a static policy."""
        cfg = self.config
        if policy is StaticPolicy.ROUND_ROBIN:
            return round_robin_placement(trace, cfg.n_nodes)
        if policy is StaticPolicy.FIRST_TOUCH:
            return first_touch_placement(trace, cfg.n_nodes, cfg.node_of_cpu)
        return post_facto_placement(trace, cfg.n_nodes, cfg.node_of_cpu)

    def simulate_static(
        self, trace: Trace, policy: StaticPolicy
    ) -> PolicySimResult:
        """Evaluate a static placement (no page movement, no overhead)."""
        cfg = self.config
        self._emit_run_meta(policy.value)
        placement = self.placement_for(trace, policy)
        stall, local_fraction = static_stall_ns(
            trace, placement, cfg.node_of_cpu, cfg.local_ns, cfg.remote_ns
        )
        total = trace.total_misses
        local = int(round(local_fraction * total))
        result = PolicySimResult(
            label=policy.value,
            total_misses=total,
            local_misses=local,
            stall_ns=stall,
        )
        result.extra["local_stall_ns"] = float(local * cfg.local_ns)
        if self.tracer.wants(MissServiced.KIND):
            self._emit_static_misses(trace, placement)
        return result

    def _emit_static_misses(self, trace: Trace, placement: np.ndarray) -> None:
        """Per-miss events for a static run (tracer-gated scalar pass).

        Mirrors :func:`~repro.policy.placement.static_stall_ns` exactly
        — same locality test, same latency charged — so attributed
        stall sums reconcile byte-for-byte with the vectorised result.
        """
        cfg = self.config
        tracer = self.tracer
        cpu_nodes = self._cpu_nodes.tolist()
        place = placement.tolist()
        local_ns, remote_ns = float(cfg.local_ns), float(cfg.remote_ns)
        rows = zip(
            trace.time_ns.tolist(),
            trace.cpu.tolist(),
            trace.page.tolist(),
            trace.weight.tolist(),
        )
        for t, cpu, page, weight in rows:
            node = place[page]
            local = node == cpu_nodes[cpu]
            tracer.emit(
                MissServiced(
                    t=t,
                    cpu=cpu,
                    page=page,
                    node=node,
                    weight=weight,
                    latency_ns=local_ns if local else remote_ns,
                    remote=not local,
                )
            )

    # -- dynamic policies ------------------------------------------------------------

    def simulate_dynamic(
        self,
        trace: Trace,
        params: PolicyParameters,
        metric: Metric = FULL_CACHE,
        label: Optional[str] = None,
        driver_trace: Optional[Trace] = None,
        initial: StaticPolicy = StaticPolicy.FIRST_TOUCH,
    ) -> PolicySimResult:
        """Replay ``trace`` under a dynamic migration/replication policy.

        ``metric`` picks the counter-driving stream: cache misses (the
        trace itself) or a TLB-miss trace derived from it (or supplied via
        ``driver_trace``), each optionally sampled.
        """
        cfg = self.config
        if metric.uses_tlb and driver_trace is None:
            driver_trace = derive_tlb_trace(trace, n_cpus=cfg.n_cpus)
        if metric.sampling_rate > 1:
            params = params.scaled_for_sampling(metric.sampling_rate)
        result = PolicySimResult(label=label or self._default_label(params, metric))
        placement = self.placement_for(trace, initial)
        profiler = self.profiler
        n_events = len(trace) + (len(driver_trace) if driver_trace is not None else 0)

        self._emit_run_meta(result.label, params)
        engine = self._resolve_engine("dynamic")
        with profiler.span("replay.dynamic", items=n_events):
            if engine == "vector":
                from repro.trace import fastpath

                with profiler.span("engine.vector", items=n_events):
                    fastpath.replay_dynamic_vector(
                        self.config, trace, params, result, placement,
                        sampling_rate=metric.sampling_rate,
                        driver_trace=driver_trace,
                        profiler=profiler,
                        tracer=self.tracer,
                    )
                return result

            def initial_node(page: int, cpu: int) -> int:
                return int(placement[page])

            if driver_trace is None:
                events = self._single_stream_events(trace)
            else:
                events = self._merged_events(trace, driver_trace)
            with profiler.span("engine.scalar", items=n_events):
                self._replay_dynamic(
                    events, params, result, initial_node,
                    sampling_rate=metric.sampling_rate,
                )
        return result

    def simulate_dynamic_chunks(
        self,
        chunks,
        params: PolicyParameters,
        metric: Metric = FULL_CACHE,
        label: Optional[str] = None,
        initial: StaticPolicy = StaticPolicy.FIRST_TOUCH,
    ) -> PolicySimResult:
        """Streaming dynamic replay over time-ordered trace chunks.

        ``chunks`` is a zero-argument callable returning a fresh
        iterator of time-ordered sub-traces (a *chunk factory*), a
        sequence of chunks, or a one-shot iterator — most usefully
        ``lambda: reader.iter_chunks()`` over a
        :class:`repro.store.ContainerReader`, so a stored trace replays
        with peak memory bounded by one chunk instead of the whole
        trace.  The streamed result is byte-identical to
        :meth:`simulate_dynamic` over the concatenated trace for every
        initial placement and metric: first-touch and round-robin
        placements are derived on the fly, post-facto placement
        majority-counts the stream in a first pass (so it needs a
        factory or a sequence — a one-shot iterator raises), and
        TLB-driven metrics derive and merge the TLB stream chunk by
        chunk (:func:`repro.trace.tlbsim.merged_tlb_stream`).
        """
        cfg = self.config
        if callable(chunks):
            factory = chunks
        elif isinstance(chunks, (list, tuple)):
            chunk_seq = chunks
            factory = lambda: iter(chunk_seq)  # noqa: E731
        else:
            factory = None  # one-shot iterator: single pass only
        if metric.sampling_rate > 1:
            params = params.scaled_for_sampling(metric.sampling_rate)
        result = PolicySimResult(label=label or self._default_label(params, metric))
        cpu_nodes = self._cpu_nodes
        placement: Optional[np.ndarray] = None
        if initial is StaticPolicy.FIRST_TOUCH:
            initial_kind: Optional[str] = "ft"

            def initial_node(page: int, cpu: int) -> int:
                return int(cpu_nodes[cpu])
        elif initial is StaticPolicy.ROUND_ROBIN:
            initial_kind = "rr"
            n_nodes = cfg.n_nodes

            def initial_node(page: int, cpu: int) -> int:
                return int(page % n_nodes)
        else:
            if factory is None:
                raise ConfigurationError(
                    "post-facto initial placement replays the stream "
                    "twice; pass a chunk factory (a zero-argument "
                    "callable returning a fresh iterator) or a "
                    "sequence of chunks instead of a one-shot iterator"
                )
            initial_kind = None
            placement = self._post_facto_from_chunks(factory)
            pf_placement = placement

            def initial_node(page: int, cpu: int) -> int:
                return int(pf_placement[page])
        stream = factory() if factory is not None else chunks
        profiler = self.profiler
        self._emit_run_meta(result.label, params)
        engine = self._resolve_engine("chunks")
        with profiler.span("replay.chunks") as run_span:
            if engine == "vector":
                from repro.trace import fastpath

                with profiler.span("engine.vector") as engine_span:
                    if metric.uses_tlb:
                        fastpath.replay_batches_vector(
                            self.config,
                            merged_tlb_stream(stream, cfg.n_cpus),
                            params, result,
                            initial_kind=initial_kind,
                            sampling_rate=metric.sampling_rate,
                            profiler=profiler,
                            tracer=self.tracer,
                            placement=placement,
                        )
                    else:
                        fastpath.replay_chunks_vector(
                            self.config, stream, params, result,
                            initial_kind=initial_kind,
                            sampling_rate=metric.sampling_rate,
                            profiler=profiler,
                            tracer=self.tracer,
                            placement=placement,
                        )
                    engine_span.add_items(result.total_misses)
                run_span.add_items(result.total_misses)
                return result
            if metric.uses_tlb:
                events = self._batch_stream_events(
                    merged_tlb_stream(stream, cfg.n_cpus), profiler
                )
            else:
                events = self._chunk_stream_events(stream, profiler)
            with profiler.span("engine.scalar") as engine_span:
                self._replay_dynamic(
                    events, params, result, initial_node,
                    sampling_rate=metric.sampling_rate,
                )
                engine_span.add_items(result.total_misses)
            run_span.add_items(result.total_misses)
        return result

    def _post_facto_from_chunks(self, factory) -> np.ndarray:
        """Majority-count pass: post-facto placement from streamed chunks.

        Reproduces :func:`repro.policy.placement.post_facto_placement`
        over the concatenated stream without materializing it: per-page
        per-node miss weights accumulate chunk by chunk into a flat
        ``(page, node)`` table (float64 sums of integer weights — exact
        below 2**53, like every other bulk sum in the vector engine).
        """
        cfg = self.config
        n_nodes = cfg.n_nodes
        cpu_nodes = self._cpu_nodes
        counts = np.zeros(0, dtype=np.float64)
        with self.profiler.span("replay.post-facto-count"):
            for chunk in factory():
                if not len(chunk):
                    continue
                pages = chunk.page
                need = (int(pages.max()) + 1) * n_nodes
                if need > len(counts):
                    counts = np.concatenate(
                        [counts, np.zeros(need - len(counts), dtype=np.float64)]
                    )
                keys = pages * n_nodes + cpu_nodes[chunk.cpu]
                counts += np.bincount(
                    keys, weights=chunk.weight, minlength=len(counts)
                )
        n_pages = len(counts) // n_nodes
        placement = np.arange(max(n_pages, 1), dtype=np.int64) % max(n_nodes, 1)
        if n_pages:
            per_page = counts.reshape(n_pages, n_nodes)
            touched = per_page.sum(axis=1) > 0
            placement[touched] = per_page[touched].argmax(axis=1)
        return placement

    def _replay_dynamic(
        self,
        events,
        params: PolicyParameters,
        result: PolicySimResult,
        initial_node,
        sampling_rate: int = 1,
    ) -> None:
        """The shared dynamic replay core.

        ``events`` yields ``(time, cpu, page, weight, is_write, costs,
        counts)`` tuples in time order; ``initial_node(page, cpu)``
        supplies a page's placement the first time it is touched.
        """
        cfg = self.config
        copies: Dict[int, Set[int]] = {}
        bank = MissCounterBank(cfg.n_cpus)
        sampler = SamplingAccumulator(cfg.n_cpus, sampling_rate)
        armed: Set[int] = set()
        cpu_nodes = self._cpu_nodes
        local_ns, remote_ns = cfg.local_ns, cfg.remote_ns
        op_cost = cfg.op_cost_ns
        trigger = params.trigger_threshold
        next_reset = params.reset_interval_ns
        local_stall = 0.0
        pending: deque = deque()   # (due_time, page, cpu) awaiting the pager
        tracer = self.tracer
        trace_on = tracer.active
        emit_miss = tracer.wants(MissServiced.KIND)
        interval_index = 0

        def act(now: int, page: int, cpu: int) -> None:
            """Pager action once the hot page's interrupt is serviced."""
            _pager_act(
                now, page, cpu, copies, bank, armed, result, params,
                cpu_nodes, op_cost, tracer, trace_on,
            )

        for time, cpu, page, weight, is_write, costs, counts in events:
            while pending and pending[0][0] <= time:
                due, hot_page, hot_cpu = pending.popleft()
                act(due, hot_page, hot_cpu)
            if time >= next_reset:
                # Flush in-flight interrupts against pre-reset counters,
                # then start the new interval.
                while pending:
                    due, hot_page, hot_cpu = pending.popleft()
                    act(due, hot_page, hot_cpu)
                if trace_on:
                    tracer.emit(
                        IntervalReset(
                            t=time,
                            index=interval_index,
                            tracked_pages=bank.tracked_pages,
                            triggers=result.hot_events,
                        )
                    )
                interval_index += 1
                bank.reset()
                armed.clear()
                while next_reset <= time:
                    next_reset += params.reset_interval_ns
            page_copies = copies.get(page)
            if page_copies is None:
                page_copies = copies[page] = {initial_node(page, cpu)}
            node = cpu_nodes[cpu]
            if costs:
                if is_write and len(page_copies) > 1:
                    # A store to a replicated page: collapse (pfault path).
                    keep = node if node in page_copies else min(page_copies)
                    dropped = len(page_copies) - 1
                    page_copies.clear()
                    page_copies.add(int(keep))
                    result.collapses += 1
                    result.overhead_ns += op_cost
                    if trace_on:
                        tracer.emit(
                            CollapseEvent(
                                t=time, page=page, cpu=cpu,
                                keep_node=int(keep),
                                replicas_dropped=dropped,
                                latency_ns=float(op_cost),
                            )
                        )
                local = node in page_copies
                result.total_misses += weight
                if local:
                    result.local_misses += weight
                    result.stall_ns += weight * local_ns
                    local_stall += weight * local_ns
                else:
                    result.stall_ns += weight * remote_ns
                if emit_miss:
                    tracer.emit(
                        MissServiced(
                            t=time,
                            cpu=cpu,
                            page=page,
                            node=int(node) if local else min(page_copies),
                            weight=weight,
                            latency_ns=float(
                                local_ns if local else remote_ns
                            ),
                            remote=not local,
                        )
                    )
            if not counts:
                continue
            counted = sampler.sample(cpu, weight)
            if counted == 0:
                continue
            count = bank.record(page, cpu, counted, is_write)
            if count < trigger or page in armed:
                continue
            if node in page_copies:
                continue  # hot but already local
            result.hot_events += 1
            armed.add(page)
            if trace_on:
                tracer.emit(
                    HotPageTriggered(
                        t=time, page=page, cpu=cpu, count=count,
                        threshold=trigger,
                    )
                )
            pending.append((time + cfg.decision_delay_ns, page, cpu))
        while pending:
            due, hot_page, hot_cpu = pending.popleft()
            act(due, hot_page, hot_cpu)
        result.extra["local_stall_ns"] = local_stall

    # -- event stream helpers ------------------------------------------------------------

    @staticmethod
    def _single_stream_events(trace: Trace):
        """Each record both costs stall and drives the counters.

        Columns are converted to Python lists once (``.tolist()``), so
        the replay loop iterates native ints instead of paying a numpy
        scalar box per field per event.
        """
        times = trace.time_ns.tolist()
        cpus = trace.cpu.tolist()
        pages = trace.page.tolist()
        weights = trace.weight.tolist()
        writes = trace.is_write.tolist()
        for row in zip(times, cpus, pages, weights, writes):
            yield (row[0], row[1], row[2], row[3], row[4], True, True)

    @staticmethod
    def _chunk_stream_events(chunks, profiler=None):
        """Single-stream events over an iterator of time-ordered chunks.

        Equivalent to :meth:`_single_stream_events` on the concatenated
        trace, but only one chunk's columns are live at a time.  Each
        chunk's span covers the *consumption* of its events by the
        replay loop (the generator suspends inside the span), so the
        per-chunk profile reflects replay time, not just decode time.
        """
        prof = as_profiler(profiler)
        for chunk in chunks:
            with prof.span("replay.chunk", items=len(chunk)):
                times = chunk.time_ns.tolist()
                cpus = chunk.cpu.tolist()
                pages = chunk.page.tolist()
                weights = chunk.weight.tolist()
                writes = chunk.is_write.tolist()
                for row in zip(times, cpus, pages, weights, writes):
                    yield (row[0], row[1], row[2], row[3], row[4], True, True)

    @staticmethod
    def _batch_stream_events(batches, profiler=None):
        """Scalar 7-tuple events over pre-merged column batches.

        Consumes the ``(times, cpus, pages, weights, is_write,
        costmask)`` batches of
        :func:`repro.trace.tlbsim.merged_tlb_stream`; equivalent to
        :meth:`_merged_events` on the concatenated cost and driver
        traces, with only one batch's columns live at a time.
        """
        prof = as_profiler(profiler)
        for times, cpus, pages, weights, iswrite, costmask in batches:
            with prof.span("replay.chunk", items=len(times)):
                rows = zip(
                    times.tolist(), cpus.tolist(), pages.tolist(),
                    weights.tolist(), iswrite.tolist(), costmask.tolist(),
                )
                for t, cpu, page, weight, iw, cost in rows:
                    yield (t, cpu, page, weight, iw, cost, not cost)

    @staticmethod
    def _merged_events(cost: Trace, driver: Trace):
        """Merge the cost and driver streams in time order.

        Driver events sort *after* cost events at equal timestamps, so a
        policy acting on an event never retroactively cheapens the miss
        that produced it.
        """
        if cost.meta is not driver.meta and cost.meta is not None:
            if driver.meta is not None and cost.meta.name != driver.meta.name:
                raise TraceError("cost and driver traces are from different workloads")
        i = j = 0
        n_cost, n_driver = len(cost), len(driver)
        c_t, d_t = cost.time_ns.tolist(), driver.time_ns.tolist()
        c_c, d_c = cost.cpu.tolist(), driver.cpu.tolist()
        c_p, d_p = cost.page.tolist(), driver.page.tolist()
        c_wt, d_wt = cost.weight.tolist(), driver.weight.tolist()
        c_w, d_w = cost.is_write.tolist(), driver.is_write.tolist()
        while i < n_cost or j < n_driver:
            take_cost = j >= n_driver or (i < n_cost and c_t[i] <= d_t[j])
            if take_cost:
                yield (c_t[i], c_c[i], c_p[i], c_wt[i], c_w[i], True, False)
                i += 1
            else:
                yield (d_t[j], d_c[j], d_p[j], d_wt[j], d_w[j], False, True)
                j += 1

    # -- the competitive baseline [BGW89] ------------------------------------------

    def simulate_competitive(
        self,
        trace: Trace,
        initial: StaticPolicy = StaticPolicy.FIRST_TOUCH,
        label: str = "Competitive",
    ) -> PolicySimResult:
        """The Black–Gupta–Weber competitive strategy, as a baseline.

        The related-work comparator (Section 2): per-page per-processor
        counters accumulate *remote* references, and a page moves once the
        accumulated remote penalty would have paid for the move — the
        classic rent-vs-buy break-even, ``op_cost / (remote - local)``
        misses.  A recently-written page migrates, an unwritten one
        replicates.

        What it lacks, by design, is the paper's selectivity: no reset
        interval (stale history still counts), no write-shared veto (only
        a "written recently" hint), and no migrate limit.  On workloads
        with fine-grain write sharing it therefore replicates pages it
        should leave alone and pays for the collapses — the behaviour the
        paper's Section 2 argues coherent caches make unaffordable.

        Both engines run it: the scalar loop steps every event through
        :class:`_CompetitiveCore`; the vector engine
        (:func:`repro.trace.fastpath.replay_competitive_vector`) steps
        only events of pages whose remote weight can reach the
        break-even watermark through the same core and bulk-sums the
        rest, byte-identically.
        """
        cfg = self.config
        break_even = max(
            1, -(-cfg.op_cost_ns // max(cfg.remote_ns - cfg.local_ns, 1))
        )
        result = PolicySimResult(label=label)
        self._emit_run_meta(label)
        engine = self._resolve_engine("competitive")
        with self.profiler.span("replay.competitive", items=len(trace)):
            placement = self.placement_for(trace, initial)
            core = _CompetitiveCore(
                cfg, result, placement, self._cpu_nodes, break_even
            )
            if engine == "vector":
                from repro.trace import fastpath

                fastpath.replay_competitive_vector(
                    cfg, trace, result, placement, core,
                    profiler=self.profiler,
                )
            else:
                step = core.step
                rows = zip(
                    trace.cpu.tolist(), trace.page.tolist(),
                    trace.weight.tolist(), trace.is_write.tolist(),
                )
                for cpu, page, weight, is_write in rows:
                    step(cpu, page, weight, is_write)
            result.extra["local_stall_ns"] = core.local_stall
            result.extra["break_even_misses"] = float(break_even)
        return result

    @staticmethod
    def _default_label(params: PolicyParameters, metric: Metric) -> str:
        if params.enable_migration and params.enable_replication:
            base = "Mig/Rep"
        elif params.enable_migration:
            base = "Migr"
        elif params.enable_replication:
            base = "Repl"
        else:
            base = "Static"
        if metric is not FULL_CACHE:
            base += f" ({metric.label})"
        return base

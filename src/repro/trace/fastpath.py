"""Vectorized segmented replay for the trace policy simulator.

The scalar core in :mod:`repro.trace.policysim` pays the interpreter on
every cache miss even though on most events the policy provably does
nothing: the page's counters cannot cross the trigger threshold this
reset interval, the page is not replicated, so the event's only effect
is a stall accumulation a numpy mask computes in bulk.

This engine exploits two structural facts of the replay semantics:

* **Resets are statically placed.**  An interval reset fires exactly
  when ``time_ns // reset_interval_ns`` increases, so the stream splits
  into per-interval segments before any state is simulated.
* **Cold pages are inert.**  Within a segment, a page can change the
  simulation state only if (a) some CPU's counted-miss sum for it
  reaches the trigger threshold *and* that CPU is remote to the page's
  segment-start placement (local crossings are no-ops in the scalar
  core), (b) it is replicated at segment start and the cost stream
  writes to it (collapse), or (c) it is still armed from an earlier
  chunk of the same interval.  Everything else — the vast majority —
  keeps a constant placement, so its stall, locality and totals reduce
  to masked sums over a per-page bitmask of nodes holding copies.

Only the *hot-candidate* pages' events are replayed through a scalar
sub-loop that shares the pager-action state machine
(``policysim._pager_act``) with the reference engine.  Sampling is
reproduced exactly: the per-CPU remainder carries of
:class:`~repro.machine.directory.SamplingAccumulator` are applied
vectorially (``counted_i = (carry + csum_i)//rate - (carry +
csum_{i-1})//rate``), so every event's surviving weight matches the
scalar engine's record for record.

Byte-identity of the floating-point fields falls out of integer
arithmetic: every stall/overhead addend is an integer (weight x
latency), and all partial sums stay far below 2**53, where float64
addition is exact — so bulk sums reproduce the scalar engine's
per-event float accumulation bit for bit, in any order.

The public entry points are :func:`replay_dynamic_vector` (whole
trace, optional merged TLB driver stream) and
:func:`replay_chunks_vector` (streaming chunks; intervals spanning a
chunk boundary carry bank/armed/pending state across, with cold
counter sums written back to the bank in batch).  Results — the full
:class:`~repro.trace.policysim.PolicySimResult`, including
``extra["local_stall_ns"]`` — are byte-identical to the scalar engine;
the differential suites in ``tests/trace/test_fastpath.py`` and
``tests/integration/test_engine_identity.py`` enforce it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

import numpy as np

from repro.common.errors import TraceError
from repro.machine.directory import MissCounterBank
from repro.obs.prof import as_profiler


class _VectorEngine:
    """Segmented replay state, shared by whole-trace and chunked modes."""

    def __init__(
        self,
        config,
        params,
        result,
        sampling_rate: int,
        placement: Optional[np.ndarray] = None,
        initial_kind: Optional[str] = None,
    ) -> None:
        # Imported here (not at module top) because policysim imports
        # this module lazily from its dispatch path.
        from repro.trace.policysim import _pager_act

        self._pager_act = _pager_act
        self.params = params
        self.result = result
        self.rate = sampling_rate
        self.n_cpus = config.n_cpus
        self.n_nodes = config.n_nodes
        self.node_list = [config.node_of_cpu(c) for c in range(config.n_cpus)]
        self.node_arr = np.asarray(self.node_list, dtype=np.int64)
        self.local_ns = config.local_ns
        self.remote_ns = config.remote_ns
        self.op_cost = config.op_cost_ns
        self.delay = config.decision_delay_ns
        self.interval = params.reset_interval_ns
        self.trigger = params.trigger_threshold

        self.bank = MissCounterBank(config.n_cpus)
        self.armed: Set[int] = set()
        self.pending: deque = deque()  # (due_time, page, cpu)
        self.copies: Dict[int, Set[int]] = {}   # materialized candidate sets
        self._dirty: Set[int] = set()           # sets newer than their mask
        self.carry = [0] * config.n_cpus        # sampling remainders per CPU
        self.cur_iid = 0
        self.local_stall = 0.0

        if placement is not None:
            # Whole-trace mode: the initial placement array covers every
            # page, so first-touch initialisation is already folded in.
            self.masks = np.int64(1) << placement.astype(np.int64)
            self.touched = None
        else:
            # Streaming mode: pages appear incrementally.
            self.masks = np.zeros(0, dtype=np.int64)
            self.touched = np.zeros(0, dtype=bool)
        self.initial_kind = initial_kind        # "ft" | "rr" | None
        self._flag = np.zeros(len(self.masks), dtype=bool)

    # -- page table growth / first touch --------------------------------------

    def _ensure_pages(self, max_page: int) -> None:
        n = len(self.masks)
        if max_page < n:
            return
        grown = max(max_page + 1, 2 * n, 1024)
        self.masks = np.concatenate(
            [self.masks, np.zeros(grown - n, dtype=np.int64)]
        )
        self._flag = np.zeros(grown, dtype=bool)
        if self.touched is not None:
            self.touched = np.concatenate(
                [self.touched, np.zeros(grown - n, dtype=bool)]
            )

    def _first_touch(self, pages: np.ndarray, cpus: np.ndarray) -> None:
        """Set initial placements for pages this batch touches first.

        Count-only driver events first-touch pages too in the scalar
        engine, so this runs over *all* events of a batch.  Setting a
        placement before the page's first event is processed is
        harmless: nothing reads an untouched page's mask.
        """
        if self.touched is None or not len(pages):
            return
        self._ensure_pages(int(pages.max()))
        first_pages, first_idx = np.unique(pages, return_index=True)
        new = ~self.touched[first_pages]
        new_pages = first_pages[new]
        if not len(new_pages):
            return
        if self.initial_kind == "ft":
            nodes = self.node_arr[cpus[first_idx[new]]]
        else:  # round-robin
            nodes = new_pages % self.n_nodes
        self.masks[new_pages] = np.int64(1) << nodes
        self.touched[new_pages] = True

    # -- exact vectorized sampling ---------------------------------------------

    def _counted(self, cpus, weights, cntmask) -> np.ndarray:
        """Per-event weights surviving 1-in-N sampling, carries applied."""
        if self.rate == 1:
            return np.where(cntmask, weights, 0)
        out = np.zeros(len(weights), dtype=np.int64)
        rate = self.rate
        for cpu in range(self.n_cpus):
            sel = cntmask & (cpus == cpu)
            if not sel.any():
                continue
            w = weights[sel]
            tot = (self.carry[cpu] + np.cumsum(w)) // rate
            counted = np.empty(len(w), dtype=np.int64)
            counted[0] = tot[0]          # carry//rate == 0 (carry < rate)
            counted[1:] = tot[1:] - tot[:-1]
            out[sel] = counted
            self.carry[cpu] = (self.carry[cpu] + int(w.sum())) % rate
        return out

    # -- feeding events --------------------------------------------------------

    def run_batch(
        self, times, cpus, pages, weights, iswrite, costmask, cntmask,
        streaming: bool,
    ) -> None:
        """Process one time-ordered batch (a whole trace or one chunk).

        With ``streaming=True`` the interval containing the batch's last
        event may continue into the next batch, so that segment's cold
        counter sums are written back to the bank.
        """
        n = len(times)
        if n == 0:
            return
        counted = self._counted(cpus, weights, cntmask)
        self._first_touch(pages, cpus)
        iids = times // self.interval
        change = np.flatnonzero(iids[1:] != iids[:-1]) + 1
        bounds = [0, *change.tolist(), n]
        last = len(bounds) - 2
        for si in range(len(bounds) - 1):
            s, e = bounds[si], bounds[si + 1]
            iid = int(iids[s])
            if iid != self.cur_iid:
                self._interval_reset()
                self.cur_iid = iid
            self._process_segment(
                times[s:e], cpus[s:e], pages[s:e], weights[s:e],
                iswrite[s:e], costmask[s:e], counted[s:e],
                writeback=streaming and si == last,
            )

    def finish(self) -> None:
        """Flush in-flight pager interrupts and finalise the result."""
        self._flush_pending()
        self.result.extra["local_stall_ns"] = self.local_stall

    # -- interval machinery ----------------------------------------------------

    def _flush_pending(self) -> None:
        pending = self.pending
        act = self._act
        dirty = self._dirty
        while pending:
            due, page, cpu = pending.popleft()
            dirty.add(page)
            act(due, page, cpu)

    def _interval_reset(self) -> None:
        # Flush in-flight interrupts against pre-reset counters, write
        # any placement changes back to the masks, then start afresh.
        self._flush_pending()
        self._writeback_dirty()
        self.bank.reset()
        self.armed.clear()

    def _act(self, now: int, page: int, cpu: int) -> None:
        self._pager_act(
            now, page, cpu, self.copies, self.bank, self.armed,
            self.result, self.params, self.node_list, self.op_cost,
            None, False,
        )

    def _writeback_dirty(self) -> None:
        masks = self.masks
        copies = self.copies
        for page in self._dirty:
            mask = 0
            for node in copies[page]:
                mask |= 1 << node
            masks[page] = mask
        self._dirty.clear()

    @staticmethod
    def _set_from_mask(mask: int) -> Set[int]:
        nodes = set()
        node = 0
        while mask:
            if mask & 1:
                nodes.add(node)
            mask >>= 1
            node += 1
        return nodes

    def _bank_carries(self, upages, ucpus) -> np.ndarray:
        """Segment-start counter values for (page, cpu) pairs.

        ``upages`` arrives page-major sorted (it comes from a unique over
        ``page * n_cpus + cpu`` keys), so one bank lookup serves each
        page's run of pairs.
        """
        out = np.zeros(len(upages), dtype=np.float64)
        get = self.bank.get
        last_page, counters = -1, None
        up = upages.tolist()
        uc = ucpus.tolist()
        for k in range(len(up)):
            page = up[k]
            if page != last_page:
                counters = get(page)
                last_page = page
            if counters is not None:
                out[k] = counters.miss[uc[k]]
        return out

    # -- one segment (a run of events inside one interval) ---------------------

    def _process_segment(
        self, times, cpus, pages, weights, iswrite, costmask, counted,
        writeback: bool,
    ) -> None:
        result = self.result
        masks = self.masks
        n_cpus = self.n_cpus

        # 1. Hot-candidate detection.
        rec = counted > 0
        kpages = pages[rec]
        have_pairs = len(kpages) > 0
        if have_pairs:
            keys = kpages * n_cpus + cpus[rec]
            u, inv = np.unique(keys, return_inverse=True)
            sums = np.bincount(inv, weights=counted[rec])
            upages = u // n_cpus
            ucpus = u % n_cpus
            if self.bank.tracked_pages:
                carries = self._bank_carries(upages, ucpus)
            else:
                carries = 0.0
            crossing = (carries + sums) >= self.trigger
            remote = ((masks[upages] >> self.node_arr[ucpus]) & 1) == 0
            cand_parts = [upages[crossing & remote]]
        else:
            upages = ucpus = sums = None
            cand_parts = [np.zeros(0, dtype=np.int64)]
        wsel = costmask & iswrite
        wpages = pages[wsel]
        if len(wpages):
            wmask = masks[wpages]
            cand_parts.append(wpages[(wmask & (wmask - 1)) != 0])
        if self.armed:
            cand_parts.append(np.fromiter(self.armed, dtype=np.int64))
        cand = np.unique(np.concatenate(cand_parts))

        # 2. Split the segment into hot (candidate-page) and cold events.
        flag = self._flag
        if len(cand):
            flag[cand] = True
            hot = flag[pages]
        else:
            hot = np.zeros(len(pages), dtype=bool)

        # 3. Cold accounting: placement is constant, so stall and
        # locality reduce to masked integer sums (exact in float64).
        cold_cost = costmask & ~hot
        cw = weights[cold_cost]
        if len(cw):
            local = (masks[pages[cold_cost]] >> self.node_arr[cpus[cold_cost]]) & 1
            total_w = int(cw.sum())
            local_w = int((cw * local).sum())
            result.total_misses += total_w
            result.local_misses += local_w
            result.stall_ns += float(
                local_w * self.local_ns + (total_w - local_w) * self.remote_ns
            )
            self.local_stall += float(local_w * self.local_ns)

        # 4. Streaming only: the interval may continue into the next
        # chunk, so cold pages' counted sums must land in the bank (the
        # next chunk's carries — and any act on a page that only later
        # becomes a candidate — read them).
        if writeback and have_pairs:
            cold_pair = ~flag[upages] if len(cand) else np.ones(len(upages), bool)
            if cold_pair.any():
                bank_record = self.bank.record
                for page, cpu, s in zip(
                    upages[cold_pair].tolist(),
                    ucpus[cold_pair].tolist(),
                    sums[cold_pair].astype(np.int64).tolist(),
                ):
                    bank_record(page, cpu, s, False)
                wrec = rec & iswrite
                wrec_pages = pages[wrec]
                if len(wrec_pages):
                    cold_w = ~flag[wrec_pages] if len(cand) else np.ones(
                        len(wrec_pages), bool
                    )
                    if cold_w.any():
                        wu, winv = np.unique(
                            wrec_pages[cold_w], return_inverse=True
                        )
                        wsums = np.bincount(
                            winv, weights=counted[wrec][cold_w]
                        ).astype(np.int64)
                        add_writes = self.bank.add_writes
                        for page, s in zip(wu.tolist(), wsums.tolist()):
                            add_writes(page, s)

        if len(cand):
            flag[cand] = False

            # 5. Materialize candidate pages' copy sets and replay their
            # events through the scalar core.
            copies = self.copies
            dirty = self._dirty
            for page in cand.tolist():
                if page not in copies:
                    copies[page] = self._set_from_mask(int(masks[page]))
                dirty.add(page)
            if hot.any():
                idx = np.flatnonzero(hot)
                self._replay_hot(
                    times[idx].tolist(), cpus[idx].tolist(),
                    pages[idx].tolist(), weights[idx].tolist(),
                    iswrite[idx].tolist(), costmask[idx].tolist(),
                    counted[idx].tolist(),
                )
            # 6. Publish placement changes so the next segment's masks
            # (cold accounting + candidate detection) see them.
            self._writeback_dirty()

    def _replay_hot(self, t, c, p, w, iw, cf, cn) -> None:
        """The scalar core, over candidate-page events only.

        Mirrors ``policysim._replay_dynamic`` exactly — minus interval
        resets (segments never span one) and sampling (``cn`` holds the
        precomputed surviving weights) — and shares ``_pager_act``.
        """
        result = self.result
        copies = self.copies
        bank = self.bank
        armed = self.armed
        pending = self.pending
        node_list = self.node_list
        local_ns, remote_ns = self.local_ns, self.remote_ns
        op_cost = self.op_cost
        trigger = self.trigger
        delay = self.delay
        act = self._act
        record = bank.record
        for k in range(len(t)):
            time = t[k]
            while pending and pending[0][0] <= time:
                due, hot_page, hot_cpu = pending.popleft()
                act(due, hot_page, hot_cpu)
            page = p[k]
            cpu = c[k]
            page_copies = copies[page]
            node = node_list[cpu]
            if cf[k]:
                weight = w[k]
                if iw[k] and len(page_copies) > 1:
                    # A store to a replicated page: collapse.
                    keep = node if node in page_copies else min(page_copies)
                    page_copies.clear()
                    page_copies.add(keep)
                    result.collapses += 1
                    result.overhead_ns += op_cost
                result.total_misses += weight
                if node in page_copies:
                    result.local_misses += weight
                    result.stall_ns += weight * local_ns
                    self.local_stall += weight * local_ns
                else:
                    result.stall_ns += weight * remote_ns
            cnt = cn[k]
            if cnt == 0:
                continue
            count = record(page, cpu, cnt, iw[k])
            if count < trigger or page in armed:
                continue
            if node in page_copies:
                continue  # hot but already local
            result.hot_events += 1
            armed.add(page)
            pending.append((time + delay, page, cpu))


# -- public entry points --------------------------------------------------------


def replay_dynamic_vector(
    config,
    trace,
    params,
    result,
    placement: np.ndarray,
    sampling_rate: int = 1,
    driver_trace=None,
    profiler=None,
) -> None:
    """Vectorized equivalent of the scalar whole-trace dynamic replay.

    ``params`` must already be scaled for sampling (the caller does this
    for both engines).  With ``driver_trace`` the cost and driver
    streams are merged by a stable sort — cost events win timestamp
    ties, exactly like the scalar two-pointer merge.  ``profiler``
    times the batch replay; spans touch no simulation state, so the
    result stays byte-identical with profiling on.
    """
    prof = as_profiler(profiler)
    engine = _VectorEngine(
        config, params, result, sampling_rate, placement=placement
    )
    if driver_trace is None:
        n = len(trace)
        ones = np.ones(n, dtype=bool)
        with prof.span("fastpath.batch", items=n):
            engine.run_batch(
                trace.time_ns, trace.cpu, trace.page, trace.weight,
                trace.is_write, ones, ones, streaming=False,
            )
    else:
        cost, driver = trace, driver_trace
        if cost.meta is not driver.meta and cost.meta is not None:
            if driver.meta is not None and cost.meta.name != driver.meta.name:
                raise TraceError(
                    "cost and driver traces are from different workloads"
                )
        n_cost, n_driver = len(cost), len(driver)
        times = np.concatenate([cost.time_ns, driver.time_ns])
        order = np.argsort(times, kind="stable")
        costmask = np.concatenate(
            [np.ones(n_cost, dtype=bool), np.zeros(n_driver, dtype=bool)]
        )[order]
        with prof.span("fastpath.batch", items=n_cost + n_driver):
            engine.run_batch(
                times[order],
                np.concatenate([cost.cpu, driver.cpu])[order],
                np.concatenate([cost.page, driver.page])[order],
                np.concatenate([cost.weight, driver.weight])[order],
                np.concatenate([cost.is_write, driver.is_write])[order],
                costmask,
                ~costmask,
                streaming=False,
            )
    engine.finish()


def replay_chunks_vector(
    config,
    chunks,
    params,
    result,
    initial_kind: str,
    sampling_rate: int = 1,
    profiler=None,
) -> None:
    """Vectorized streaming replay over time-ordered trace chunks.

    ``initial_kind`` is ``"ft"`` (first-touch) or ``"rr"``
    (round-robin); post-facto needs the whole trace and is rejected by
    the caller.  Bank counters, armed pages, pending interrupts and
    sampling carries flow across chunk boundaries, so the streamed
    result is byte-identical to the whole-trace replay.  ``profiler``
    gets one ``replay.chunk`` span per chunk.
    """
    prof = as_profiler(profiler)
    engine = _VectorEngine(
        config, params, result, sampling_rate,
        placement=None, initial_kind=initial_kind,
    )
    for chunk in chunks:
        n = len(chunk)
        ones = np.ones(n, dtype=bool)
        with prof.span("replay.chunk", items=n):
            engine.run_batch(
                chunk.time_ns, chunk.cpu, chunk.page, chunk.weight,
                chunk.is_write, ones, ones, streaming=True,
            )
    engine.finish()

"""Vectorized segmented replay for the trace policy simulator.

The scalar core in :mod:`repro.trace.policysim` pays the interpreter on
every cache miss even though on most events the policy provably does
nothing: the page's counters cannot cross the trigger threshold this
reset interval, the page is not replicated, so the event's only effect
is a stall accumulation a numpy mask computes in bulk.

This engine exploits two structural facts of the replay semantics:

* **Resets are statically placed.**  An interval reset fires exactly
  when ``time_ns // reset_interval_ns`` increases, so the stream splits
  into per-interval segments before any state is simulated.
* **Cold pages are inert.**  Within a segment, a page can change the
  simulation state only if (a) some CPU's counted-miss sum for it
  reaches the trigger threshold *and* that CPU is remote to the page's
  segment-start placement (local crossings are no-ops in the scalar
  core), (b) it is replicated at segment start and the cost stream
  writes to it (collapse), or (c) it is still armed from an earlier
  chunk of the same interval.  Everything else — the vast majority —
  keeps a constant placement, so its stall, locality and totals reduce
  to masked sums over a per-page bitmask of nodes holding copies.

Only the *hot-candidate* pages' events are replayed through a scalar
sub-loop that shares the pager-action state machine
(``policysim._pager_act``) with the reference engine.  Sampling is
reproduced exactly: the per-CPU remainder carries of
:class:`~repro.machine.directory.SamplingAccumulator` are applied
vectorially (``counted_i = (carry + csum_i)//rate - (carry +
csum_{i-1})//rate``), so every event's surviving weight matches the
scalar engine's record for record.

Byte-identity of the floating-point fields falls out of integer
arithmetic: every stall/overhead addend is an integer (weight x
latency), and all partial sums stay far below 2**53, where float64
addition is exact — so bulk sums reproduce the scalar engine's
per-event float accumulation bit for bit, in any order.

The public entry points are :func:`replay_dynamic_vector` (whole
trace, optional merged TLB driver stream), :func:`replay_chunks_vector`
(streaming chunks; intervals spanning a chunk boundary carry
bank/armed/pending state across, with cold counter sums written back to
the bank in batch), :func:`replay_batches_vector` (pre-merged column
batches, e.g. the streamed TLB-driver merge of
:func:`repro.trace.tlbsim.merged_tlb_stream`) and
:func:`replay_competitive_vector` (the [BGW89] competitive baseline).
Results — the full :class:`~repro.trace.policysim.PolicySimResult`,
including ``extra["local_stall_ns"]`` — are byte-identical to the
scalar engine; the differential suites in
``tests/trace/test_fastpath.py`` and
``tests/integration/test_engine_identity.py`` enforce it.

An active tracer composes with the engine through
:class:`repro.obs.batch.BatchEmitter`: emissions are buffered with
their global stream index and flushed in scalar order at every interval
reset, so traced vector runs produce the *same event sequence* as the
scalar core.  Deferred pager actions are emitted at the index of the
record the scalar core would drain them on (the first record whose
timestamp reaches the due time); between that record and the point the
vector engine actually executes the action only cold events can occur
(a hot event at or past the due time would have drained it), and cold
events never touch a candidate page's state — so the emitted decision
contents match the scalar core's exactly, not just their order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

import numpy as np

from repro.common.errors import TraceError
from repro.machine.directory import MissCounterBank
from repro.obs.batch import DATA_REPLAY_PHASES, BatchEmitter
from repro.obs.events import (
    CollapseEvent,
    HotPageTriggered,
    IntervalReset,
    MissServiced,
)
from repro.obs.prof import as_profiler


class _VectorEngine:
    """Segmented replay state, shared by whole-trace and chunked modes."""

    def __init__(
        self,
        config,
        params,
        result,
        sampling_rate: int,
        placement: Optional[np.ndarray] = None,
        initial_kind: Optional[str] = None,
        tracer=None,
    ) -> None:
        # Imported here (not at module top) because policysim imports
        # this module lazily from its dispatch path.
        from repro.trace.policysim import _pager_act

        self._pager_act = _pager_act
        self.params = params
        self.result = result
        self.rate = sampling_rate
        self.n_cpus = config.n_cpus
        self.n_nodes = config.n_nodes
        self.node_list = [config.node_of_cpu(c) for c in range(config.n_cpus)]
        self.node_arr = np.asarray(self.node_list, dtype=np.int64)
        self.local_ns = config.local_ns
        self.remote_ns = config.remote_ns
        self.op_cost = config.op_cost_ns
        self.delay = config.decision_delay_ns
        self.interval = params.reset_interval_ns
        self.trigger = params.trigger_threshold

        self.bank = MissCounterBank(config.n_cpus)
        self.armed: Set[int] = set()
        self.pending: deque = deque()  # (due_time, page, cpu)
        self.copies: Dict[int, Set[int]] = {}   # materialized candidate sets
        self._dirty: Set[int] = set()           # sets newer than their mask
        self._cold_tracked: Set[int] = set()    # traced-only cold page count
        self.carry = [0] * config.n_cpus        # sampling remainders per CPU
        self.cur_iid = 0
        self.local_stall = 0.0

        # Batched emission: buffered with global stream indices, flushed
        # in scalar order at every interval reset (see repro.obs.batch).
        if tracer is not None and tracer.active:
            self.em: Optional[BatchEmitter] = BatchEmitter(
                tracer, DATA_REPLAY_PHASES
            )
            self.emit_miss = tracer.wants(MissServiced.KIND)
        else:
            self.em = None
            self.emit_miss = False
        self.gpos = 0               # global index of the next record
        self.interval_index = 0
        self._seg_times = None      # current segment's times (drain keys)
        self._seg_gstart = 0

        if placement is not None:
            # Whole-trace mode: the initial placement array covers every
            # page, so first-touch initialisation is already folded in.
            self.masks = np.int64(1) << placement.astype(np.int64)
            self.touched = None
        else:
            # Streaming mode: pages appear incrementally.
            self.masks = np.zeros(0, dtype=np.int64)
            self.touched = np.zeros(0, dtype=bool)
        self.initial_kind = initial_kind        # "ft" | "rr" | None
        self._flag = np.zeros(len(self.masks), dtype=bool)

    # -- page table growth / first touch --------------------------------------

    def _ensure_pages(self, max_page: int) -> None:
        n = len(self.masks)
        if max_page < n:
            return
        grown = max(max_page + 1, 2 * n, 1024)
        self.masks = np.concatenate(
            [self.masks, np.zeros(grown - n, dtype=np.int64)]
        )
        self._flag = np.zeros(grown, dtype=bool)
        if self.touched is not None:
            self.touched = np.concatenate(
                [self.touched, np.zeros(grown - n, dtype=bool)]
            )

    def _first_touch(self, pages: np.ndarray, cpus: np.ndarray) -> None:
        """Set initial placements for pages this batch touches first.

        Count-only driver events first-touch pages too in the scalar
        engine, so this runs over *all* events of a batch.  Setting a
        placement before the page's first event is processed is
        harmless: nothing reads an untouched page's mask.
        """
        if self.touched is None or not len(pages):
            return
        self._ensure_pages(int(pages.max()))
        first_pages, first_idx = np.unique(pages, return_index=True)
        new = ~self.touched[first_pages]
        new_pages = first_pages[new]
        if not len(new_pages):
            return
        if self.initial_kind == "ft":
            nodes = self.node_arr[cpus[first_idx[new]]]
        else:  # round-robin
            nodes = new_pages % self.n_nodes
        self.masks[new_pages] = np.int64(1) << nodes
        self.touched[new_pages] = True

    # -- exact vectorized sampling ---------------------------------------------

    def _counted(self, cpus, weights, cntmask) -> np.ndarray:
        """Per-event weights surviving 1-in-N sampling, carries applied."""
        if self.rate == 1:
            return np.where(cntmask, weights, 0)
        out = np.zeros(len(weights), dtype=np.int64)
        rate = self.rate
        for cpu in range(self.n_cpus):
            sel = cntmask & (cpus == cpu)
            if not sel.any():
                continue
            w = weights[sel]
            tot = (self.carry[cpu] + np.cumsum(w)) // rate
            counted = np.empty(len(w), dtype=np.int64)
            counted[0] = tot[0]          # carry//rate == 0 (carry < rate)
            counted[1:] = tot[1:] - tot[:-1]
            out[sel] = counted
            self.carry[cpu] = (self.carry[cpu] + int(w.sum())) % rate
        return out

    # -- feeding events --------------------------------------------------------

    def run_batch(
        self, times, cpus, pages, weights, iswrite, costmask, cntmask,
        streaming: bool,
    ) -> None:
        """Process one time-ordered batch (a whole trace or one chunk).

        With ``streaming=True`` the interval containing the batch's last
        event may continue into the next batch, so that segment's cold
        counter sums are written back to the bank.
        """
        n = len(times)
        if n == 0:
            return
        counted = self._counted(cpus, weights, cntmask)
        self._first_touch(pages, cpus)
        iids = times // self.interval
        change = np.flatnonzero(iids[1:] != iids[:-1]) + 1
        bounds = [0, *change.tolist(), n]
        last = len(bounds) - 2
        for si in range(len(bounds) - 1):
            s, e = bounds[si], bounds[si + 1]
            iid = int(iids[s])
            if iid != self.cur_iid:
                self._interval_reset(self.gpos + s, int(times[s]))
                self.cur_iid = iid
            self._process_segment(
                times[s:e], cpus[s:e], pages[s:e], weights[s:e],
                iswrite[s:e], costmask[s:e], counted[s:e],
                gstart=self.gpos + s,
                writeback=streaming and si == last,
            )
        self.gpos += n

    def finish(self) -> None:
        """Flush in-flight pager interrupts and finalise the result."""
        # Remaining interrupts fall due after the last record; the scalar
        # core drains them after its loop, so they sort last (``gpos``).
        self._flush_pending(self.gpos, None)
        if self.em is not None:
            self.em.flush()
        self.result.extra["local_stall_ns"] = self.local_stall

    # -- interval machinery ----------------------------------------------------

    def _flush_pending(self, at_gidx: int = 0, at_time=None) -> None:
        pending = self.pending
        act = self._act
        dirty = self._dirty
        em = self.em
        if em is None:
            while pending:
                due, page, cpu = pending.popleft()
                dirty.add(page)
                act(due, page, cpu)
            return
        # Traced: entries already due at the flush record drain there
        # (phase 0, like any drained action); entries flushed before
        # falling due sort after them (phase 1), before the reset event.
        while pending:
            due, page, cpu = pending.popleft()
            dirty.add(page)
            em.index = at_gidx
            em.phase = 0 if (at_time is None or due <= at_time) else 1
            act(due, page, cpu)
        em.phase = None

    def _interval_reset(self, reset_gidx: int, reset_time: int) -> None:
        # Flush in-flight interrupts against pre-reset counters, write
        # any placement changes back to the masks, then start afresh.
        self._flush_pending(reset_gidx, reset_time)
        self._writeback_dirty()
        em = self.em
        if em is not None:
            # Cold pages counted only by the set-aside (see the traced
            # branch of step 4) join the bank's own page count; a page
            # can sit in both when an interval spans a chunk boundary.
            bank_get = self.bank.get
            tracked = self.bank.tracked_pages + sum(
                1 for p in self._cold_tracked if bank_get(p) is None
            )
            em.index = reset_gidx
            em.phase = None
            em.emit(
                IntervalReset(
                    t=reset_time,
                    index=self.interval_index,
                    tracked_pages=tracked,
                    triggers=self.result.hot_events,
                )
            )
        self.interval_index += 1
        self.bank.reset()
        self._cold_tracked.clear()
        self.armed.clear()
        if em is not None:
            em.flush()

    def _act(self, now: int, page: int, cpu: int) -> None:
        em = self.em
        self._pager_act(
            now, page, cpu, self.copies, self.bank, self.armed,
            self.result, self.params, self.node_list, self.op_cost,
            em, em is not None,
        )

    def _writeback_dirty(self) -> None:
        masks = self.masks
        copies = self.copies
        for page in self._dirty:
            mask = 0
            for node in copies[page]:
                mask |= 1 << node
            masks[page] = mask
        self._dirty.clear()

    @staticmethod
    def _set_from_mask(mask: int) -> Set[int]:
        nodes = set()
        node = 0
        while mask:
            if mask & 1:
                nodes.add(node)
            mask >>= 1
            node += 1
        return nodes

    def _bank_carries(self, upages, ucpus) -> np.ndarray:
        """Segment-start counter values for (page, cpu) pairs.

        ``upages`` arrives page-major sorted (it comes from a unique over
        ``page * n_cpus + cpu`` keys), so one bank lookup serves each
        page's run of pairs.
        """
        out = np.zeros(len(upages), dtype=np.float64)
        get = self.bank.get
        last_page, counters = -1, None
        up = upages.tolist()
        uc = ucpus.tolist()
        for k in range(len(up)):
            page = up[k]
            if page != last_page:
                counters = get(page)
                last_page = page
            if counters is not None:
                out[k] = counters.miss[uc[k]]
        return out

    # -- one segment (a run of events inside one interval) ---------------------

    def _process_segment(
        self, times, cpus, pages, weights, iswrite, costmask, counted,
        gstart: int, writeback: bool,
    ) -> None:
        result = self.result
        masks = self.masks
        n_cpus = self.n_cpus
        em = self.em

        # 1. Hot-candidate detection.
        rec = counted > 0
        kpages = pages[rec]
        have_pairs = len(kpages) > 0
        if have_pairs:
            keys = kpages * n_cpus + cpus[rec]
            u, inv = np.unique(keys, return_inverse=True)
            sums = np.bincount(inv, weights=counted[rec])
            upages = u // n_cpus
            ucpus = u % n_cpus
            if self.bank.tracked_pages:
                carries = self._bank_carries(upages, ucpus)
            else:
                carries = 0.0
            crossing = (carries + sums) >= self.trigger
            remote = ((masks[upages] >> self.node_arr[ucpus]) & 1) == 0
            cand_parts = [upages[crossing & remote]]
        else:
            upages = ucpus = sums = None
            cand_parts = [np.zeros(0, dtype=np.int64)]
        wsel = costmask & iswrite
        wpages = pages[wsel]
        if len(wpages):
            wmask = masks[wpages]
            cand_parts.append(wpages[(wmask & (wmask - 1)) != 0])
        if self.armed:
            cand_parts.append(np.fromiter(self.armed, dtype=np.int64))
        cand = np.unique(np.concatenate(cand_parts))

        # 2. Split the segment into hot (candidate-page) and cold events.
        flag = self._flag
        if len(cand):
            flag[cand] = True
            hot = flag[pages]
        else:
            hot = np.zeros(len(pages), dtype=bool)

        # 3. Cold accounting: placement is constant, so stall and
        # locality reduce to masked integer sums (exact in float64).
        cold_cost = costmask & ~hot
        cw = weights[cold_cost]
        if len(cw):
            local = (masks[pages[cold_cost]] >> self.node_arr[cpus[cold_cost]]) & 1
            total_w = int(cw.sum())
            local_w = int((cw * local).sum())
            result.total_misses += total_w
            result.local_misses += local_w
            result.stall_ns += float(
                local_w * self.local_ns + (total_w - local_w) * self.remote_ns
            )
            self.local_stall += float(local_w * self.local_ns)
            if self.emit_miss:
                # Cold placements are segment-constant, so the serving
                # node is the placement node when local and the lowest
                # replica node (min of the copy set) when remote —
                # exactly the scalar core's MissServiced fields.
                cold_pages = pages[cold_cost]
                cmask = masks[cold_pages]
                low = np.log2((cmask & -cmask).astype(np.float64)).astype(
                    np.int64
                )
                is_local = local.astype(bool)
                serving = np.where(
                    is_local, self.node_arr[cpus[cold_cost]], low
                )
                idx_list = (gstart + np.flatnonzero(cold_cost)).tolist()
                rows = zip(
                    times[cold_cost].tolist(),
                    cpus[cold_cost].tolist(),
                    cold_pages.tolist(),
                    cw.tolist(),
                    serving.tolist(),
                    is_local.tolist(),
                )
                lat_l, lat_r = float(self.local_ns), float(self.remote_ns)
                em.phase = None
                emit = em.emit
                for j, (t, cpu, page, w, node, loc) in enumerate(rows):
                    em.index = idx_list[j]
                    emit(
                        MissServiced(
                            t=t, cpu=cpu, page=page, node=node, weight=w,
                            latency_ns=lat_l if loc else lat_r,
                            remote=not loc,
                        )
                    )

        # 4. Streaming (and any traced run): the interval may continue
        # into the next chunk, so cold pages' counted sums must land in
        # the bank (the next chunk's carries — and any act on a page
        # that only later becomes a candidate — read them).  Traced runs
        # also need them so IntervalReset.tracked_pages matches the
        # scalar core, which records every counted event.
        if writeback and have_pairs:
            cold_pair = ~flag[upages] if len(cand) else np.ones(len(upages), bool)
            if cold_pair.any():
                bank_record = self.bank.record
                for page, cpu, s in zip(
                    upages[cold_pair].tolist(),
                    ucpus[cold_pair].tolist(),
                    sums[cold_pair].astype(np.int64).tolist(),
                ):
                    bank_record(page, cpu, s, False)
                wrec = rec & iswrite
                wrec_pages = pages[wrec]
                if len(wrec_pages):
                    cold_w = ~flag[wrec_pages] if len(cand) else np.ones(
                        len(wrec_pages), bool
                    )
                    if cold_w.any():
                        wu, winv = np.unique(
                            wrec_pages[cold_w], return_inverse=True
                        )
                        wsums = np.bincount(
                            winv, weights=counted[wrec][cold_w]
                        ).astype(np.int64)
                        add_writes = self.bank.add_writes
                        for page, s in zip(wu.tolist(), wsums.tolist()):
                            add_writes(page, s)
        elif em is not None and have_pairs:
            # Traced, non-streaming: the interval ends with this segment,
            # so no later act or carry can read the cold counters — only
            # ``IntervalReset.tracked_pages`` needs them.  Count the cold
            # pages instead of materializing their counters (the scalar
            # core tracks every counted page, hot or cold).
            cold_pair = ~flag[upages] if len(cand) else np.ones(len(upages), bool)
            if cold_pair.any():
                self._cold_tracked.update(
                    np.unique(upages[cold_pair]).tolist()
                )

        if len(cand):
            flag[cand] = False

            # 5. Materialize candidate pages' copy sets and replay their
            # events through the scalar core.
            copies = self.copies
            dirty = self._dirty
            for page in cand.tolist():
                if page not in copies:
                    copies[page] = self._set_from_mask(int(masks[page]))
                dirty.add(page)
            if hot.any():
                idx = np.flatnonzero(hot)
                self._seg_times = times
                self._seg_gstart = gstart
                self._replay_hot(
                    times[idx].tolist(), cpus[idx].tolist(),
                    pages[idx].tolist(), weights[idx].tolist(),
                    iswrite[idx].tolist(), costmask[idx].tolist(),
                    counted[idx].tolist(),
                    (gstart + idx).tolist() if em is not None else None,
                )
            # Traced: drain every interrupt already due within this
            # segment so no due-but-unresolved entry survives a segment
            # boundary — its emission index is the first record whose
            # timestamp reaches the due time, resolvable only while
            # this segment's times are at hand.  (State-identical to
            # the deferred drain: the skipped-over records are all cold
            # and cold events never touch a candidate page.)
            if em is not None and self.pending:
                last_t = int(times[-1])
                pending = self.pending
                dirty = self._dirty
                act = self._act
                while pending and pending[0][0] <= last_t:
                    due, page, cpu = pending.popleft()
                    dirty.add(page)
                    em.index = gstart + int(
                        np.searchsorted(times, due, side="left")
                    )
                    em.phase = 0
                    act(due, page, cpu)
                em.phase = None
            # 6. Publish placement changes so the next segment's masks
            # (cold accounting + candidate detection) see them.
            self._writeback_dirty()

    def _replay_hot(self, t, c, p, w, iw, cf, cn, gx=None) -> None:
        """The scalar core, over candidate-page events only.

        Mirrors ``policysim._replay_dynamic`` exactly — minus interval
        resets (segments never span one) and sampling (``cn`` holds the
        precomputed surviving weights) — and shares ``_pager_act``.
        ``gx`` carries each event's global stream index for batched
        emission (None when untraced).
        """
        result = self.result
        copies = self.copies
        bank = self.bank
        armed = self.armed
        pending = self.pending
        node_list = self.node_list
        local_ns, remote_ns = self.local_ns, self.remote_ns
        op_cost = self.op_cost
        trigger = self.trigger
        delay = self.delay
        act = self._act
        record = bank.record
        em = self.em
        emit_miss = self.emit_miss
        seg_times = self._seg_times
        seg_gstart = self._seg_gstart
        for k in range(len(t)):
            time = t[k]
            while pending and pending[0][0] <= time:
                due, hot_page, hot_cpu = pending.popleft()
                if em is not None:
                    # The scalar core drains this action at the first
                    # record (of any temperature) whose time reaches the
                    # due time — that record's index orders the emission.
                    em.index = seg_gstart + int(
                        np.searchsorted(seg_times, due, side="left")
                    )
                    em.phase = 0
                act(due, hot_page, hot_cpu)
            page = p[k]
            cpu = c[k]
            page_copies = copies[page]
            node = node_list[cpu]
            if em is not None:
                em.index = gx[k]
                em.phase = None
            if cf[k]:
                weight = w[k]
                if iw[k] and len(page_copies) > 1:
                    # A store to a replicated page: collapse.
                    keep = node if node in page_copies else min(page_copies)
                    dropped = len(page_copies) - 1
                    page_copies.clear()
                    page_copies.add(keep)
                    result.collapses += 1
                    result.overhead_ns += op_cost
                    if em is not None:
                        em.emit(
                            CollapseEvent(
                                t=time, page=page, cpu=cpu,
                                keep_node=int(keep),
                                replicas_dropped=dropped,
                                latency_ns=float(op_cost),
                            )
                        )
                result.total_misses += weight
                local = node in page_copies
                if local:
                    result.local_misses += weight
                    result.stall_ns += weight * local_ns
                    self.local_stall += weight * local_ns
                else:
                    result.stall_ns += weight * remote_ns
                if emit_miss:
                    em.emit(
                        MissServiced(
                            t=time, cpu=cpu, page=page,
                            node=int(node) if local else min(page_copies),
                            weight=weight,
                            latency_ns=float(
                                local_ns if local else remote_ns
                            ),
                            remote=not local,
                        )
                    )
            cnt = cn[k]
            if cnt == 0:
                continue
            count = record(page, cpu, cnt, iw[k])
            if count < trigger or page in armed:
                continue
            if node in page_copies:
                continue  # hot but already local
            result.hot_events += 1
            armed.add(page)
            if em is not None:
                em.emit(
                    HotPageTriggered(
                        t=time, page=page, cpu=cpu, count=count,
                        threshold=trigger,
                    )
                )
            pending.append((time + delay, page, cpu))


# -- public entry points --------------------------------------------------------


def replay_dynamic_vector(
    config,
    trace,
    params,
    result,
    placement: np.ndarray,
    sampling_rate: int = 1,
    driver_trace=None,
    profiler=None,
    tracer=None,
) -> None:
    """Vectorized equivalent of the scalar whole-trace dynamic replay.

    ``params`` must already be scaled for sampling (the caller does this
    for both engines).  With ``driver_trace`` the cost and driver
    streams are merged by a stable sort — cost events win timestamp
    ties, exactly like the scalar two-pointer merge.  ``profiler``
    times the batch replay; spans touch no simulation state, so the
    result stays byte-identical with profiling on.  An active ``tracer``
    receives the scalar core's exact event sequence via batched
    emission.
    """
    prof = as_profiler(profiler)
    engine = _VectorEngine(
        config, params, result, sampling_rate, placement=placement,
        tracer=tracer,
    )
    if driver_trace is None:
        n = len(trace)
        ones = np.ones(n, dtype=bool)
        with prof.span("fastpath.batch", items=n):
            engine.run_batch(
                trace.time_ns, trace.cpu, trace.page, trace.weight,
                trace.is_write, ones, ones, streaming=False,
            )
    else:
        cost, driver = trace, driver_trace
        if cost.meta is not driver.meta and cost.meta is not None:
            if driver.meta is not None and cost.meta.name != driver.meta.name:
                raise TraceError(
                    "cost and driver traces are from different workloads"
                )
        n_cost, n_driver = len(cost), len(driver)
        times = np.concatenate([cost.time_ns, driver.time_ns])
        order = np.argsort(times, kind="stable")
        costmask = np.concatenate(
            [np.ones(n_cost, dtype=bool), np.zeros(n_driver, dtype=bool)]
        )[order]
        with prof.span("fastpath.batch", items=n_cost + n_driver):
            engine.run_batch(
                times[order],
                np.concatenate([cost.cpu, driver.cpu])[order],
                np.concatenate([cost.page, driver.page])[order],
                np.concatenate([cost.weight, driver.weight])[order],
                np.concatenate([cost.is_write, driver.is_write])[order],
                costmask,
                ~costmask,
                streaming=False,
            )
    engine.finish()


def replay_chunks_vector(
    config,
    chunks,
    params,
    result,
    initial_kind: Optional[str],
    sampling_rate: int = 1,
    profiler=None,
    tracer=None,
    placement: Optional[np.ndarray] = None,
) -> None:
    """Vectorized streaming replay over time-ordered trace chunks.

    ``initial_kind`` is ``"ft"`` (first-touch) or ``"rr"``
    (round-robin), or ``None`` when ``placement`` supplies a full
    initial placement array (the post-facto two-pass path: the caller
    streams the chunks once to majority-count them, then replays here).
    Bank counters, armed pages, pending interrupts and sampling carries
    flow across chunk boundaries, so the streamed result is
    byte-identical to the whole-trace replay.  ``profiler`` gets one
    ``replay.chunk`` span per chunk.
    """
    prof = as_profiler(profiler)
    engine = _VectorEngine(
        config, params, result, sampling_rate,
        placement=placement, initial_kind=initial_kind,
        tracer=tracer,
    )
    for chunk in chunks:
        n = len(chunk)
        ones = np.ones(n, dtype=bool)
        with prof.span("replay.chunk", items=n):
            engine.run_batch(
                chunk.time_ns, chunk.cpu, chunk.page, chunk.weight,
                chunk.is_write, ones, ones, streaming=True,
            )
    engine.finish()


def replay_batches_vector(
    config,
    batches,
    params,
    result,
    initial_kind: Optional[str],
    sampling_rate: int = 1,
    profiler=None,
    tracer=None,
    placement: Optional[np.ndarray] = None,
) -> None:
    """Vectorized streaming replay over pre-merged column batches.

    Each batch is a ``(times, cpus, pages, weights, iswrite, costmask)``
    tuple of aligned arrays — the shape
    :func:`repro.trace.tlbsim.merged_tlb_stream` yields, where TLB-miss
    driver events (``costmask`` False) are interleaved with the cost
    stream in exact scalar merge order.  Driver events count toward
    triggers but carry no stall; cost events do both.  ``initial_kind``
    and ``placement`` behave as in :func:`replay_chunks_vector`.
    """
    prof = as_profiler(profiler)
    engine = _VectorEngine(
        config, params, result, sampling_rate,
        placement=placement, initial_kind=initial_kind,
        tracer=tracer,
    )
    for times, cpus, pages, weights, iswrite, costmask in batches:
        with prof.span("replay.chunk", items=len(times)):
            engine.run_batch(
                times, cpus, pages, weights, iswrite,
                costmask, ~costmask, streaming=True,
            )
    engine.finish()


def replay_competitive_vector(
    config,
    trace,
    result,
    placement: np.ndarray,
    core,
    profiler=None,
) -> None:
    """Vectorized [BGW89]-style competitive replication baseline.

    ``core`` is the shared scalar state machine
    (``policysim._CompetitiveCore``); only events of *candidate* pages —
    those whose per-(page, CPU) remote-miss weight sum can reach the
    break-even watermark — go through it.  A non-candidate page can
    never replicate (the watermark counter is bounded by that sum), so
    its placement is constant and its stall reduces to masked sums
    against the initial placement, exactly like the dynamic engine's
    cold split.  Candidate pages replay *all* their events (reads and
    writes: the written-set bookkeeping needs both).
    """
    prof = as_profiler(profiler)
    times = trace.time_ns
    cpus = trace.cpu
    pages = trace.page
    weights = trace.weight
    iswrite = trace.is_write
    n = len(times)
    with prof.span("fastpath.competitive", items=n):
        cpu_nodes = np.asarray(
            [config.node_of_cpu(c) for c in range(config.n_cpus)],
            dtype=np.int64,
        )
        remote = placement[pages] != cpu_nodes[cpus]
        rsel = np.flatnonzero(remote)
        if len(rsel):
            keys = pages[rsel] * config.n_cpus + cpus[rsel]
            u, inv = np.unique(keys, return_inverse=True)
            sums = np.bincount(inv, weights=weights[rsel])
            cand_pages = np.unique((u // config.n_cpus)[sums >= core.break_even])
        else:
            cand_pages = np.zeros(0, dtype=np.int64)
        if len(cand_pages):
            flag = np.zeros(len(placement), dtype=bool)
            flag[cand_pages] = True
            hot = flag[pages]
        else:
            hot = np.zeros(n, dtype=bool)

        # Cold bulk: non-candidate pages keep their initial placement
        # (no replication can fire, and collapses only drop replicas of
        # replicated — hence candidate — pages).
        cold = ~hot
        cw = weights[cold]
        if len(cw):
            local = ~remote[cold]
            total_w = int(cw.sum())
            local_w = int((cw * local).sum())
            result.total_misses += total_w
            result.local_misses += local_w
            result.stall_ns += float(
                local_w * config.local_ns
                + (total_w - local_w) * config.remote_ns
            )
            core.local_stall += float(local_w * config.local_ns)

        # Hot: replay candidate pages' events, one page at a time.  The
        # watermark machine's state (copies, written flag, per-CPU
        # counters) is entirely per-page and every result field is an
        # order-independent exact sum (integral addends below 2^53), so
        # grouping by page is byte-identical to stream order — and lets
        # the inner loop keep the whole state in locals instead of dict
        # lookups per event.  This intentionally restates
        # ``_CompetitiveCore.step``; the differential suites hold the
        # two to byte identity.
        if hot.any():
            idx = np.flatnonzero(hot)
            order = np.argsort(pages[idx], kind="stable")
            idx = idx[order]
            gpages = pages[idx]
            bounds = np.flatnonzero(
                np.r_[True, gpages[1:] != gpages[:-1], True]
            )
            ev_nodes = cpu_nodes[cpus[idx]].tolist()
            ev_cpus = cpus[idx].tolist()
            ev_w = weights[idx].tolist()
            ev_iw = iswrite[idx].tolist()
            break_even = core.break_even
            local_ns = config.local_ns
            remote_ns = config.remote_ns
            op_cost = config.op_cost_ns
            total_w = local_w = overhead = 0
            collapses = migrations = replications = hot_events = 0
            for g in range(len(bounds) - 1):
                lo, hi = int(bounds[g]), int(bounds[g + 1])
                page_copies = {int(placement[gpages[lo]])}
                counts = [0] * config.n_cpus
                written = False
                for pos in range(lo, hi):
                    node = ev_nodes[pos]
                    weight = ev_w[pos]
                    if ev_iw[pos]:
                        written = True
                        if len(page_copies) > 1:
                            keep = (node if node in page_copies
                                    else min(page_copies))
                            page_copies = {keep}
                            collapses += 1
                            overhead += op_cost
                    total_w += weight
                    if node in page_copies:
                        local_w += weight
                        continue
                    cpu = ev_cpus[pos]
                    counts[cpu] += weight
                    if counts[cpu] < break_even:
                        continue
                    hot_events += 1
                    if written and len(page_copies) == 1:
                        page_copies = {node}
                        migrations += 1
                    else:
                        page_copies.add(node)
                        replications += 1
                    overhead += op_cost
                    counts = [0] * config.n_cpus
            result.total_misses += total_w
            result.local_misses += local_w
            result.stall_ns += float(
                local_w * local_ns + (total_w - local_w) * remote_ns
            )
            core.local_stall += float(local_w * local_ns)
            result.collapses += collapses
            result.migrations += migrations
            result.replications += replications
            result.hot_events += hot_events
            result.overhead_ns += overhead

"""Trace infrastructure: records, TLB derivation, trace-driven policy sim."""

from repro.trace.policysim import (
    PolicySimConfig,
    PolicySimResult,
    StaticPolicy,
    TracePolicySimulator,
)
from repro.trace.record import (
    FLAG_INSTR,
    FLAG_KERNEL,
    FLAG_WRITE,
    MissRecord,
    Trace,
    TraceBuilder,
    merge_traces,
)
from repro.trace.tlbsim import derive_tlb_trace

__all__ = [
    "PolicySimConfig",
    "PolicySimResult",
    "StaticPolicy",
    "TracePolicySimulator",
    "FLAG_INSTR",
    "FLAG_KERNEL",
    "FLAG_WRITE",
    "MissRecord",
    "Trace",
    "TraceBuilder",
    "merge_traces",
    "derive_tlb_trace",
]

"""Derive a TLB-miss trace from a cache-miss trace (Section 8.3).

"The miss behavior of the TLB can be modelled as a cache with the line
size being a page" — we run each CPU's page-touch stream through a real
64-entry LRU TLB.  A weighted cache-miss record stands for a *burst* of
misses to one page; the burst touches the TLB once on entry, and — when
the page's working set exceeds the TLB reach between successive misses —
re-touches it during the burst.  That intra-burst behaviour is summarised
by the page group's ``tlb_factor`` (TLB misses emitted per cache miss once
the page is not TLB-resident):

* hot *code* pages loop tightly inside a handful of pages, so they suffer
  enormous cache-miss counts with almost no TLB misses (factor ~0.01) —
  the mechanism behind TLB information failing on the engineering
  workload;
* sparse *data* sweeps change pages as fast as they miss, so their TLB
  miss counts track their cache-miss counts much more closely.

The derived trace keeps the original timestamps, so reset intervals align
between the two streams.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.common.errors import TraceError
from repro.machine.config import TlbConfig
from repro.machine.tlb import Tlb
from repro.trace.record import FLAG_INSTR, FLAG_KERNEL, Trace, TraceBuilder

DEFAULT_TLB_FACTOR = 0.3


class TlbTraceDeriver:
    """Stateful TLB-miss derivation, one chunk of cache misses at a time.

    The per-CPU TLB contents and the per-page factor cache survive
    across :meth:`feed` calls, so feeding a trace chunk by chunk (for
    example from :meth:`repro.store.ContainerReader.iter_chunks`)
    produces exactly the records :func:`derive_tlb_trace` would emit
    for the concatenated trace — with only one chunk's cache-miss
    columns live at a time.
    """

    def __init__(
        self,
        n_cpus: int,
        tlb_config: Optional[TlbConfig] = None,
        factor_of_page: Optional[Callable[[int], float]] = None,
    ) -> None:
        self.n_cpus = int(n_cpus)
        self._tlbs = [Tlb(tlb_config) for _ in range(self.n_cpus)]
        self._factor_of_page = factor_of_page
        self._factor_cache: dict = {}

    def _resolve_factor(self, chunk: Trace) -> Callable[[int], float]:
        if self._factor_of_page is None:
            if chunk.meta is not None:
                self._factor_of_page = chunk.meta.tlb_factor_of_page
            else:
                self._factor_of_page = lambda page: DEFAULT_TLB_FACTOR
        return self._factor_of_page

    def feed(self, chunk: Trace) -> Trace:
        """The TLB-miss sub-trace this chunk of cache misses produces.

        Timestamps are preserved; the result may be empty when every
        touch hit a TLB.
        """
        factor_of_page = self._resolve_factor(chunk)
        tlbs = self._tlbs
        factor_cache = self._factor_cache
        builder = TraceBuilder(meta=chunk.meta)
        times = chunk.time_ns
        cpus = chunk.cpu
        processes = chunk.process
        pages = chunk.page
        weights = chunk.weight
        flags = chunk.flags
        for i in range(len(chunk)):
            cpu = int(cpus[i])
            if cpu >= self.n_cpus:
                raise TraceError(f"record cpu {cpu} outside machine")
            page = int(pages[i])
            hit = tlbs[cpu].access(page)
            if hit:
                continue
            factor = factor_cache.get(page)
            if factor is None:
                factor = factor_cache[page] = float(factor_of_page(page))
            tlb_weight = max(1, int(round(int(weights[i]) * factor)))
            flag = int(flags[i])
            builder.append(
                int(times[i]),
                cpu,
                int(processes[i]),
                page,
                weight=tlb_weight,
                # A software TLB reload sees whether the faulting reference
                # was a store, so write information survives in the TLB
                # stream.
                is_write=bool(flag & 0x1),
                is_instr=bool(flag & FLAG_INSTR),
                is_kernel=bool(flag & FLAG_KERNEL),
            )
        return builder.build(sort=False)


def derive_tlb_trace(
    trace: Trace,
    n_cpus: Optional[int] = None,
    tlb_config: Optional[TlbConfig] = None,
    factor_of_page: Optional[Callable[[int], float]] = None,
) -> Trace:
    """Produce the TLB-miss trace corresponding to ``trace``.

    ``factor_of_page`` defaults to the workload spec attached to the
    trace (``trace.meta.tlb_factor_of_page``) and falls back to a uniform
    factor when no metadata is available.
    """
    if n_cpus is None:
        n_cpus = int(trace.cpu.max()) + 1 if len(trace) else 1
    deriver = TlbTraceDeriver(
        n_cpus, tlb_config=tlb_config, factor_of_page=factor_of_page
    )
    return deriver.feed(trace)


def derive_tlb_trace_chunks(
    chunks: Iterable[Trace],
    n_cpus: int,
    tlb_config: Optional[TlbConfig] = None,
    factor_of_page: Optional[Callable[[int], float]] = None,
) -> Iterator[Trace]:
    """Stream TLB-miss derivation over time-ordered cache-miss chunks.

    Yields one (possibly empty-filtered) derived chunk per input chunk;
    concatenating the yields reproduces :func:`derive_tlb_trace` on the
    concatenated input.  ``n_cpus`` is required because a stream's CPU
    range is unknown up front.
    """
    deriver = TlbTraceDeriver(
        n_cpus, tlb_config=tlb_config, factor_of_page=factor_of_page
    )
    for chunk in chunks:
        derived = deriver.feed(chunk)
        if len(derived):
            yield derived


def merged_tlb_stream(
    chunks: Iterable[Trace],
    n_cpus: int,
    tlb_config: Optional[TlbConfig] = None,
    factor_of_page: Optional[Callable[[int], float]] = None,
) -> Iterator[Tuple[np.ndarray, ...]]:
    """Stream the cost/TLB-driver merge over time-ordered chunks.

    Derives each chunk's TLB-miss sub-trace (statefully, like
    :func:`derive_tlb_trace_chunks`) and merges it back into the
    cache-miss stream in exactly the order the whole-trace two-pointer
    merge (``policysim._merged_events``) produces: time order, cost
    events winning timestamp ties.  Yields ``(times, cpus, pages,
    weights, is_write, costmask)`` column batches — ``costmask`` True
    for cache-miss (stall-charging) records, False for derived TLB
    (counter-driving) records — ready for
    :func:`repro.trace.fastpath.replay_batches_vector` or a scalar
    event wrapper.

    A derived record whose timestamp reaches the chunk's last cost
    timestamp is *held back* and merged with a later batch: a future
    chunk may still contain cost events at or below that timestamp,
    which must sort before it.  Cost timestamps are non-decreasing
    across chunks, so anything strictly earlier is safe to emit.
    """
    deriver = TlbTraceDeriver(
        n_cpus, tlb_config=tlb_config, factor_of_page=factor_of_page
    )
    carry: Optional[Tuple[np.ndarray, ...]] = None
    for chunk in chunks:
        derived = deriver.feed(chunk)
        if not len(chunk):
            continue
        pool: Tuple[np.ndarray, ...] = (
            derived.time_ns, derived.cpu, derived.page,
            derived.weight, derived.is_write,
        )
        if carry is not None:
            pool = tuple(
                np.concatenate([c, d]) for c, d in zip(carry, pool)
            )
        last_cost_t = int(chunk.time_ns[-1])
        ready = pool[0] < last_cost_t
        now = tuple(col[ready] for col in pool)
        carry = tuple(col[~ready] for col in pool)
        n_cost, n_driver = len(chunk), len(now[0])
        times = np.concatenate([chunk.time_ns, now[0]])
        # Stable sort with cost columns first: at equal timestamps the
        # cost record precedes the driver record, like the scalar merge.
        order = np.argsort(times, kind="stable")
        costmask = np.concatenate(
            [np.ones(n_cost, dtype=bool), np.zeros(n_driver, dtype=bool)]
        )[order]
        yield (
            times[order],
            np.concatenate([chunk.cpu, now[1]])[order],
            np.concatenate([chunk.page, now[2]])[order],
            np.concatenate([chunk.weight, now[3]])[order],
            np.concatenate([chunk.is_write, now[4]])[order],
            costmask,
        )
    if carry is not None and len(carry[0]):
        yield (
            carry[0], carry[1], carry[2], carry[3], carry[4],
            np.zeros(len(carry[0]), dtype=bool),
        )

"""Derive a TLB-miss trace from a cache-miss trace (Section 8.3).

"The miss behavior of the TLB can be modelled as a cache with the line
size being a page" — we run each CPU's page-touch stream through a real
64-entry LRU TLB.  A weighted cache-miss record stands for a *burst* of
misses to one page; the burst touches the TLB once on entry, and — when
the page's working set exceeds the TLB reach between successive misses —
re-touches it during the burst.  That intra-burst behaviour is summarised
by the page group's ``tlb_factor`` (TLB misses emitted per cache miss once
the page is not TLB-resident):

* hot *code* pages loop tightly inside a handful of pages, so they suffer
  enormous cache-miss counts with almost no TLB misses (factor ~0.01) —
  the mechanism behind TLB information failing on the engineering
  workload;
* sparse *data* sweeps change pages as fast as they miss, so their TLB
  miss counts track their cache-miss counts much more closely.

The derived trace keeps the original timestamps, so reset intervals align
between the two streams.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import TraceError
from repro.machine.config import TlbConfig
from repro.machine.tlb import Tlb
from repro.trace.record import FLAG_INSTR, FLAG_KERNEL, Trace, TraceBuilder

DEFAULT_TLB_FACTOR = 0.3


def derive_tlb_trace(
    trace: Trace,
    n_cpus: Optional[int] = None,
    tlb_config: Optional[TlbConfig] = None,
    factor_of_page: Optional[Callable[[int], float]] = None,
) -> Trace:
    """Produce the TLB-miss trace corresponding to ``trace``.

    ``factor_of_page`` defaults to the workload spec attached to the
    trace (``trace.meta.tlb_factor_of_page``) and falls back to a uniform
    factor when no metadata is available.
    """
    if n_cpus is None:
        n_cpus = int(trace.cpu.max()) + 1 if len(trace) else 1
    if factor_of_page is None:
        if trace.meta is not None:
            factor_of_page = trace.meta.tlb_factor_of_page
        else:
            factor_of_page = lambda page: DEFAULT_TLB_FACTOR  # noqa: E731
    tlbs = [Tlb(tlb_config) for _ in range(n_cpus)]
    builder = TraceBuilder(meta=trace.meta)
    times = trace.time_ns
    cpus = trace.cpu
    processes = trace.process
    pages = trace.page
    weights = trace.weight
    flags = trace.flags
    factor_cache: dict = {}
    for i in range(len(trace)):
        cpu = int(cpus[i])
        if cpu >= n_cpus:
            raise TraceError(f"record cpu {cpu} outside machine")
        page = int(pages[i])
        hit = tlbs[cpu].access(page)
        if hit:
            continue
        factor = factor_cache.get(page)
        if factor is None:
            factor = factor_cache[page] = float(factor_of_page(page))
        tlb_weight = max(1, int(round(int(weights[i]) * factor)))
        flag = int(flags[i])
        builder.append(
            int(times[i]),
            cpu,
            int(processes[i]),
            page,
            weight=tlb_weight,
            # A software TLB reload sees whether the faulting reference was
            # a store, so write information survives in the TLB stream.
            is_write=bool(flag & 0x1),
            is_instr=bool(flag & FLAG_INSTR),
            is_kernel=bool(flag & FLAG_KERNEL),
        )
    return builder.build(sort=False)

"""Baseline comparison: the competitive strategy of Black et al. [BGW89].

Section 2 of the paper positions its policy against the earlier
competitive approach (move a page once the accumulated remote penalty
would have paid for the move) and argues that coherent caches demand more
*selectivity* — especially a write-sharing veto.

This bench runs both policies through the trace-driven simulator.  The
expected shape: on a migration/replication-friendly workload
(engineering) the two are comparable, but on the fine-grain write-shared
database the competitive strategy keeps paying break-even moves for pages
that can never stay local, ending up worse than first touch — while the
paper's policy correctly declines to act.
"""

from conftest import USER_WORKLOADS

from repro.analysis.tables import format_table
from repro.policy.parameters import PolicyParameters
from repro.trace.policysim import (
    PolicySimConfig,
    StaticPolicy,
    TracePolicySimulator,
)


def test_baseline_competitive_strategy(store, emit, once):
    def compute():
        rows = []
        for name in USER_WORKLOADS:
            spec, trace = store.workload(name)
            user = trace.user_only()
            sim = TracePolicySimulator(
                PolicySimConfig(n_cpus=spec.n_cpus, n_nodes=spec.n_nodes)
            )
            trigger = 96 if name == "engineering" else 128
            ft = sim.simulate_static(user, StaticPolicy.FIRST_TOUCH)
            ours = sim.simulate_dynamic(
                user, PolicyParameters.base(trigger_threshold=trigger)
            )
            competitive = sim.simulate_competitive(user)
            for r in (ft, ours, competitive):
                rows.append(
                    [
                        name,
                        r.label,
                        r.local_fraction * 100,
                        (r.stall_ns + r.overhead_ns) / 1e9,
                        r.migrations + r.replications + r.collapses,
                    ]
                )
        return rows

    rows = once(compute)
    emit(
        "baseline_competitive",
        format_table(
            "Baseline: competitive strategy [BGW89] vs the paper's policy "
            "(trace-driven; stall + movement overhead)",
            ["Workload", "Policy", "Local %", "Stall+Ovhd (s)", "Ops"],
            rows,
        ),
    )
    def pick(workload, policy):
        return next(r for r in rows if r[0] == workload and r[1] == policy)

    # On engineering both dynamic policies beat FT soundly.
    assert pick("engineering", "Mig/Rep")[3] < pick("engineering", "FT")[3]
    assert pick("engineering", "Competitive")[3] < pick("engineering", "FT")[3]
    # On the database the competitive strategy thrashes...
    db_comp = pick("database", "Competitive")
    db_ft = pick("database", "FT")
    db_ours = pick("database", "Mig/Rep")
    assert db_comp[3] > db_ft[3]              # worse than doing nothing
    assert db_comp[4] > db_ours[4] * 3        # via far more operations
    # ...while the selective policy stays robust.
    assert db_ours[3] <= db_ft[3] * 1.02

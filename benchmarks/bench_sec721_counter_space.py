"""Section 7.2.1: space overhead of the per-page per-CPU miss counters.

Pure arithmetic from the paper: one 1-byte counter per processor per 4 KB
page is 0.2 % of memory at 8 nodes and 3.1 % at 128; sampling permits
half-size counters (1.6 %), and grouping processors shrinks it further.
All to be contrasted with the 7 % the directory already spends on
cache-coherence state.
"""

import pytest

from repro.analysis.tables import format_table
from repro.machine.directory import counter_space_overhead


def test_sec721_counter_space_overhead(emit, once):
    def compute():
        rows = []
        for nodes in (8, 32, 128):
            rows.append(
                [
                    nodes,
                    counter_space_overhead(nodes) * 100,
                    counter_space_overhead(nodes, counter_bytes=0.5) * 100,
                    counter_space_overhead(nodes, grouped_cpus=4) * 100,
                ]
            )
        return rows

    rows = once(compute)
    emit(
        "sec721_counter_space",
        format_table(
            "Section 7.2.1: counter space overhead (% of memory; paper: "
            "0.2% at 8 nodes, 3.1% at 128, 1.6% sampled half-size)",
            ["Nodes", "1B counters %", "Sampled (0.5B) %", "Grouped x4 %"],
            rows,
            float_format="{:.2f}",
        ),
    )
    by_nodes = {r[0]: r for r in rows}
    assert by_nodes[8][1] == pytest.approx(0.195, abs=0.01)
    assert by_nodes[128][1] == pytest.approx(3.125, abs=0.01)
    assert by_nodes[128][2] == pytest.approx(1.5625, abs=0.01)
    # All variants stay below the 7 % the directory itself costs.
    assert all(r[1] < 7.0 for r in rows)

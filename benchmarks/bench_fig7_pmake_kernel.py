"""Figure 7: can the *kernel's* pages benefit from migration/replication?

IRIX cannot actually move kernel pages (the kernel is loaded unmapped at
boot), so — like the paper — we feed the pmake workload's kernel-only miss
trace to the trace-driven policy simulator.

Paper answer: almost no benefit beyond first touch.  Per-CPU structures
(PDA, kernel stacks, local PFDs) already have first-touch affinity, the
shared kernel data is write-shared, and the replicable kernel text is only
~12 % of the misses.
"""

from repro.analysis.tables import format_bar_figure, format_table
from repro.policy.parameters import PolicyParameters
from repro.trace.policysim import (
    PolicySimConfig,
    StaticPolicy,
    TracePolicySimulator,
)


def test_fig7_kernel_migration_replication(store, emit, once):
    def compute():
        spec, trace = store.workload("pmake")
        kern = trace.kernel_only()
        sim = TracePolicySimulator(PolicySimConfig())
        results = {
            policy.value: sim.simulate_static(kern, policy)
            for policy in StaticPolicy
        }
        results["Migr"] = sim.simulate_dynamic(
            kern, PolicyParameters.migration_only(), label="Migr"
        )
        results["Repl"] = sim.simulate_dynamic(
            kern, PolicyParameters.replication_only(), label="Repl"
        )
        results["Mig/Rep"] = sim.simulate_dynamic(
            kern, PolicyParameters.base(), label="Mig/Rep"
        )
        kernel_code_share = (
            kern.instr_only().total_misses / kern.total_misses
        )
        return results, kernel_code_share

    results, code_share = once(compute)
    baseline = results["RR"].run_time_ns()
    bars = [
        (
            label,
            {
                "remote stall": r.remote_stall_ns / baseline,
                "local stall": r.local_stall_ns / baseline,
                "overhead": r.overhead_ns / baseline,
            },
        )
        for label, r in results.items()
    ]
    emit(
        "fig7_pmake_kernel",
        format_bar_figure(
            "Figure 7: pmake kernel misses, normalised to RR "
            f"(kernel code = {code_share * 100:.1f}% of kernel misses; "
            "paper: ~12%, and no policy beats FT materially)",
            bars, total_label="normalised",
        ),
    )
    ft = results["FT"]
    rr = results["RR"]
    migrep = results["Mig/Rep"]
    # FT is dramatically better than RR (per-CPU kernel structures)...
    assert ft.stall_ns < rr.stall_ns * 0.75
    # ...and dynamic policies add almost nothing (within 15 % of FT).
    total = migrep.stall_ns + migrep.overhead_ns
    assert total < ft.stall_ns * 1.15
    assert total > ft.stall_ns * 0.70
    # The kernel text really is a small slice of the misses.
    assert 0.06 < code_share < 0.20

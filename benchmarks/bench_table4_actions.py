"""Table 4: breakdown of actions taken on hot pages.

For each workload, the hot pages the pager serviced are broken into
migrations, replications, no-action decisions and allocation failures.

Paper rows (hot pages; % migrate / replicate / no action / no page):
engineering 7,728: 55/27/12/6; raytrace 2,934: 34/31/35/0;
splash 6,328: 36/22/18/24; database 2,003: 13/2/85/0.
"""

from conftest import BENCH_SCALE, USER_WORKLOADS

from repro.analysis.tables import format_table


def test_table4_hot_page_actions(store, emit, once):
    def compute():
        rows = []
        for name in USER_WORKLOADS:
            tally = store.fig3(name)["Mig/Rep"].tally
            pct = tally.percentages()
            rows.append(
                [
                    name,
                    tally.hot_pages,
                    pct["% Migrate"],
                    pct["% Replicate"],
                    pct["% No Action"],
                    pct["% No Page"],
                ]
            )
        return rows

    rows = once(compute)
    emit(
        "table4_actions",
        format_table(
            "Table 4: Actions taken on hot pages "
            "(paper: eng 55/27/12/6, ray 34/31/35/0, "
            "splash 36/22/18/24, db 13/2/85/0)",
            ["Workload", "Hot Pages", "% Migrate", "% Replicate",
             "% No Action", "% No Page"],
            rows,
        ),
    )
    by_name = {r[0]: r for r in rows}
    # The paper's robustness headline: the database declines to act on the
    # overwhelming majority of its (write-shared) hot pages.
    assert by_name["database"][4] > 60
    # Engineering exercises both mechanisms.
    assert by_name["engineering"][2] > 10 and by_name["engineering"][3] > 3
    # Splash is the only workload with substantial allocation failures;
    # its per-node memory only fills near the full run length.
    if BENCH_SCALE >= 0.8:
        assert by_name["splash"][5] > 5
    assert by_name["splash"][5] >= by_name["raytrace"][5]
    assert by_name["raytrace"][5] < 5
    assert by_name["database"][5] < 5

"""Section 8.4: sensitivity to the sharing threshold.

The sharing threshold decides whether a hot page is a migration or a
replication candidate.  The paper finds performance quite insensitive to
it within a reasonable range: most pages are *clearly* shared (code,
read-mostly data) or *clearly* unshared (sequential applications' data),
so moving the boundary barely changes any decision.
"""

from conftest import USER_WORKLOADS

from repro.analysis.tables import format_table
from repro.policy.parameters import PolicyParameters
from repro.trace.policysim import PolicySimConfig, TracePolicySimulator

SHARING = (8, 16, 32, 64)


def test_sec84_sharing_threshold_insensitivity(store, emit, once):
    def compute():
        out = {}
        for name in USER_WORKLOADS:
            spec, trace = store.workload(name)
            user = trace.user_only()
            sim = TracePolicySimulator(
                PolicySimConfig(n_cpus=spec.n_cpus, n_nodes=spec.n_nodes)
            )
            out[name] = {
                sharing: sim.simulate_dynamic(
                    user,
                    PolicyParameters(
                        trigger_threshold=128, sharing_threshold=sharing
                    ),
                )
                for sharing in SHARING
            }
        return out

    all_results = once(compute)
    rows = []
    for name, results in all_results.items():
        locals_pct = [results[s].local_fraction * 100 for s in SHARING]
        rows.append([name] + locals_pct + [max(locals_pct) - min(locals_pct)])
    emit(
        "sec84_sharing",
        format_table(
            "Section 8.4: % local vs sharing threshold "
            "(paper: insensitive within a reasonable range)",
            ["Workload"] + [f"sharing={s}" for s in SHARING] + ["spread"],
            rows,
        ),
    )
    for row in rows:
        assert row[-1] < 12, row[0]     # spread of a few points at most

"""Table 2: description of the workloads.

Regenerates the workload inventory — applications, CPU counts, structural
composition — from the synthetic specs.
"""

from conftest import ALL_WORKLOADS

from repro.analysis.tables import format_table

NOTES = {
    "engineering": "multiprogrammed, compute-intensive serial applications",
    "raytrace": "parallel graphics application (rendering a scene)",
    "splash": "multiprogrammed, compute-intensive parallel applications",
    "database": "commercial database (decision support queries)",
    "pmake": "software development (parallel compilation)",
}


def test_table2_workload_descriptions(store, emit, once):
    def compute():
        rows = []
        for name in ALL_WORKLOADS:
            spec, _ = store.workload(name)
            rows.append(
                [
                    name,
                    len(spec.processes),
                    spec.n_cpus,
                    round(spec.memory_mb, 1),
                    NOTES[name],
                ]
            )
        return rows

    rows = once(compute)
    emit(
        "table2_workloads",
        format_table(
            "Table 2: Description of the workloads",
            ["Workload", "Processes", "CPUs", "Memory (MB)", "Notes"],
            rows,
        ),
    )
    assert len(rows) == 5
    db = next(r for r in rows if r[0] == "database")
    assert db[2] == 4            # the database runs on four processors

"""Figure 8: performance impact of approximate information.

The combined policy driven by full cache misses (FC), 1-in-10 sampled
cache misses (SC), full TLB misses (FT) and sampled TLB misses (ST).

Paper: SC is *identical* to FC for every workload — the basis of the
recommendation that future machines support sampled miss counting — while
TLB information is effective for some workloads but clearly not for
engineering (whose gains come from replicating hot code pages that stay
TLB-resident and are therefore invisible in the TLB-miss stream).
"""

from conftest import USER_WORKLOADS

from repro.analysis.tables import format_bar_figure, format_table
from repro.policy.metrics import ALL_METRICS
from repro.policy.parameters import PolicyParameters
from repro.trace.policysim import PolicySimConfig, TracePolicySimulator


def test_fig8_approximate_information(store, emit, once):
    def compute():
        out = {}
        for name in USER_WORKLOADS:
            spec, trace = store.workload(name)
            user = trace.user_only()
            sim = TracePolicySimulator(
                PolicySimConfig(n_cpus=spec.n_cpus, n_nodes=spec.n_nodes)
            )
            trigger = 96 if name == "engineering" else 128
            params = PolicyParameters.base(trigger_threshold=trigger)
            out[name] = {
                metric.label: sim.simulate_dynamic(
                    user, params, metric=metric, label=metric.label
                )
                for metric in ALL_METRICS
            }
        return out

    all_results = once(compute)
    rows = []
    for name, results in all_results.items():
        rows.append(
            [name]
            + [results[m].local_fraction * 100 for m in ("FC", "SC", "FT", "ST")]
        )
        bars = [
            (
                label,
                {
                    "remote stall": r.remote_stall_ns / 1e9,
                    "local stall": r.local_stall_ns / 1e9,
                    "overhead": r.overhead_ns / 1e9,
                },
            )
            for label, r in results.items()
        ]
        emit(
            f"fig8_{name}",
            format_bar_figure(
                f"Figure 8 ({name}): policy driven by FC / SC / FT / ST",
                bars, total_label="seconds",
            ),
        )
    emit(
        "fig8_summary",
        format_table(
            "Figure 8 summary: % of misses made local per metric "
            "(paper: SC == FC everywhere; TLB fails on engineering)",
            ["Workload", "FC", "SC", "FT(tlb)", "ST(tlb)"],
            rows,
        ),
    )
    by_name = {r[0]: r for r in rows}
    for name in USER_WORKLOADS:
        fc, sc = by_name[name][1], by_name[name][2]
        # Sampled cache matches full cache (within a few points).
        assert abs(fc - sc) < 8, name
    # TLB misses are an inconsistent approximation: engineering suffers
    # a large locality gap; others are much closer to FC.
    eng_gap = by_name["engineering"][1] - by_name["engineering"][3]
    assert eng_gap > 12
    other_gaps = [
        by_name[n][1] - by_name[n][3]
        for n in ("raytrace", "splash", "database")
    ]
    assert eng_gap > max(other_gaps)

"""Section 7.1.2: system-wide benefit — contention relief.

The paper reports that, for the engineering workload, the base policy cut
remote-memory-request handler invocations by 40 %, average network queue
length by 38 % and maximum directory-controller occupancy by 32 %, which
in turn lowered the average *local* read-miss latency by 34 %; and that on
a zero-network-delay machine locality still improved stall by 38 % purely
through contention.
"""

from conftest import params_for

from repro.analysis.tables import format_table
from repro.machine.config import MachineConfig
from repro.sim.simulator import run_policy_comparison


def reduction(before, after):
    return 100 * (before - after) / before if before else 0.0


def test_sec712_contention_relief(store, emit, once):
    def compute():
        return store.fig3("engineering")

    results = once(compute)
    ft, mr = results["FT"].contention, results["Mig/Rep"].contention
    rows = [
        ["remote handler invocations", ft.remote_handler_invocations,
         mr.remote_handler_invocations,
         reduction(ft.remote_handler_invocations,
                   mr.remote_handler_invocations)],
        ["avg network queue length", ft.average_network_queue_length,
         mr.average_network_queue_length,
         reduction(ft.average_network_queue_length,
                   mr.average_network_queue_length)],
        ["max controller occupancy", ft.max_controller_occupancy,
         mr.max_controller_occupancy,
         reduction(ft.max_controller_occupancy,
                   mr.max_controller_occupancy)],
        ["avg local miss latency (ns)", ft.average_local_latency_ns,
         mr.average_local_latency_ns,
         reduction(ft.average_local_latency_ns,
                   mr.average_local_latency_ns)],
    ]
    emit(
        "sec712_contention",
        format_table(
            "Section 7.1.2: contention relief, engineering "
            "(paper reductions: handlers 40%, queue 38%, occupancy 32%, "
            "local latency 34%)",
            ["Metric", "FT", "Mig/Rep", "Reduction %"],
            rows,
            float_format="{:.3f}",
        ),
    )
    assert rows[0][3] > 25          # handler invocations drop sharply
    assert rows[1][3] > 10          # queues shorten
    assert rows[2][3] >= 0          # occupancy does not worsen
    assert rows[3][3] >= 0          # local latency does not worsen


def test_sec712_zero_network_delay(store, emit, once):
    def compute():
        spec, trace = store.workload("engineering")
        machine = MachineConfig.zero_network(
            n_cpus=spec.n_cpus, n_nodes=spec.n_nodes
        )
        return run_policy_comparison(
            spec, trace, machine=machine, params=params_for("engineering")
        )

    results = once(compute)
    ft, mr = results["FT"], results["Mig/Rep"]
    stall_red = mr.stall_reduction_over(ft)
    exec_imp = mr.improvement_over(ft)
    emit(
        "sec712_zero_network",
        format_table(
            "Section 7.1.2: zero interconnect delay, engineering "
            "(paper: stall -38%, exec -21%)",
            ["Metric", "Value %"],
            [["stall reduction", stall_red], ["exec improvement", exec_imp]],
        ),
    )
    # With no network delay the only remote penalty is controller
    # contention; locality must still help, just less than on CC-NUMA.
    assert stall_red > 3
    ccnuma = store.fig3("engineering")
    assert stall_red < ccnuma["Mig/Rep"].stall_reduction_over(ccnuma["FT"])

"""Figure 6: six policies under the trace-driven contentionless model.

Round-robin (RR), first-touch (FT) and post-facto (PF, the best possible
static placement with future knowledge) against migration-only (Migr),
replication-only (Repl) and the combined policy (Mig/Rep); 300/1200 ns
latencies, 350 us per page operation.

Paper shape: for three of the four workloads the dynamic policies beat
every static policy *including* PF; both mechanisms are needed (Migr and
Repl each leave gains on the table that Mig/Rep captures).
"""

from conftest import USER_WORKLOADS

from repro.analysis.tables import format_bar_figure, format_table
from repro.policy.parameters import PolicyParameters
from repro.trace.policysim import (
    PolicySimConfig,
    StaticPolicy,
    TracePolicySimulator,
)

DYNAMIC = {
    "Migr": PolicyParameters.migration_only,
    "Repl": PolicyParameters.replication_only,
    "Mig/Rep": PolicyParameters.base,
}


def run_six_policies(spec, trace):
    user = trace.user_only()
    sim = TracePolicySimulator(
        PolicySimConfig(n_cpus=spec.n_cpus, n_nodes=spec.n_nodes)
    )
    trigger = 96 if spec.name == "engineering" else 128
    results = {}
    for policy in StaticPolicy:
        results[policy.value] = sim.simulate_static(user, policy)
    for label, factory in DYNAMIC.items():
        results[label] = sim.simulate_dynamic(
            user, factory(trigger_threshold=trigger), label=label
        )
    return results


def test_fig6_policy_comparison(store, emit, once):
    def compute():
        return {
            name: run_six_policies(*store.workload(name))
            for name in USER_WORKLOADS
        }

    all_results = once(compute)
    for name, results in all_results.items():
        baseline = results["RR"].run_time_ns()
        bars = []
        annotations = {}
        for label in ("RR", "FT", "PF", "Migr", "Repl", "Mig/Rep"):
            r = results[label]
            bars.append(
                (
                    label,
                    {
                        "remote stall": r.remote_stall_ns / baseline,
                        "local stall": r.local_stall_ns / baseline,
                        "mig/rep overhead": r.overhead_ns / baseline,
                    },
                )
            )
            annotations[label] = (
                f"{r.local_fraction * 100:.0f}% local; normalised "
                f"{r.run_time_ns() / baseline:.2f}"
            )
        emit(
            f"fig6_{name}",
            format_bar_figure(
                f"Figure 6 ({name}): user time normalised to RR",
                bars, total_label="normalised", annotations=annotations,
            ),
        )
    rows = []
    for name, results in all_results.items():
        rows.append(
            [name]
            + [
                results[label].run_time_ns() / results["RR"].run_time_ns()
                for label in ("RR", "FT", "PF", "Migr", "Repl", "Mig/Rep")
            ]
        )
    emit(
        "fig6_summary",
        format_table(
            "Figure 6 summary: run time normalised to RR",
            ["Workload", "RR", "FT", "PF", "Migr", "Repl", "Mig/Rep"],
            rows,
            float_format="{:.3f}",
        ),
    )
    by_name = {r[0]: r for r in rows}
    for name in USER_WORKLOADS:
        rr, ft, pf, migr, repl, migrep = by_name[name][1:]
        assert pf <= ft <= rr + 1e-9          # static ordering
    # Dynamic beats even post-facto on three of the four workloads.
    beats_pf = sum(
        1 for name in USER_WORKLOADS
        if by_name[name][6] < by_name[name][3]
    )
    assert beats_pf >= 3
    # Both mechanisms needed: the combination wins on engineering.
    eng = by_name["engineering"]
    assert eng[6] <= min(eng[4], eng[5]) + 0.02

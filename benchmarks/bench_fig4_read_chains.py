"""Figure 4: percentage of data cache misses in read chains.

A read chain is a string of reads to a page from one processor terminated
by a write from any processor; the fraction of misses in long chains
measures how much a workload can gain from replication.

Paper shape: raytrace has ~60 % of its data misses in chains of 512+;
splash ~30 %; the database curve collapses early (its hot pages are
write-shared).
"""

from conftest import USER_WORKLOADS

from repro.analysis.readchains import DEFAULT_THRESHOLDS, chain_survival
from repro.analysis.tables import format_series


def test_fig4_read_chain_survival(store, emit, once):
    def compute():
        series = {}
        for name in USER_WORKLOADS:
            _, trace = store.workload(name)
            series[name] = [
                (float(t), fraction * 100)
                for t, fraction in chain_survival(
                    trace.user_only(), DEFAULT_THRESHOLDS
                )
            ]
        return series

    series = once(compute)
    emit(
        "fig4_read_chains",
        format_series(
            "Figure 4: % of data misses in read chains >= L "
            "(paper: raytrace ~60% at 512, splash ~30%)",
            "chain length",
            series,
        ),
    )
    at_512 = {name: dict(points)[512.0] for name, points in series.items()}
    assert 40 < at_512["raytrace"] < 80
    assert 15 < at_512["splash"] < 50
    assert at_512["database"] < 25
    assert at_512["raytrace"] > at_512["splash"] > at_512["database"]

"""Table 3: execution time and memory usage of the workloads.

Runs each workload under first-touch (the machine's default policy) and
reports cumulative CPU time, memory footprint, the user/kernel/idle time
split and the stall percentages of non-idle time.
"""

from conftest import ALL_WORKLOADS

from repro.analysis.tables import format_table
from repro.sim.simulator import SimulatorOptions, SystemSimulator

#: Approximate share of compute time spent in kernel mode per workload
#: (pmake is compilation-heavy in the kernel; the others are mostly user).
KERNEL_COMPUTE_SHARE = {
    "engineering": 0.06,
    "raytrace": 0.20,
    "splash": 0.12,
    "database": 0.05,
    "pmake": 0.45,
}

PAPER = {  # workload: (cum CPU sec, MB, %user, %kern, %idle, ki, kd, ui, ud)
    "engineering": (61.76, 27.5, 74, 6, 20, 1.6, 3.8, 34.4, 37.4),
    "raytrace": (74.08, 28.8, 69, 25, 6, 3.6, 15.1, 4.8, 36.1),
    "splash": (87.52, 57.6, 65, 17, 18, 4.4, 11.8, 3.1, 36.3),
    "database": (30.40, 20.8, 55, 7, 38, 1.4, 6.0, 2.5, 50.3),
    "pmake": (35.27, 73.7, 34, 44, 22, 4.0, 29.3, 3.6, 9.1),
}


def test_table3_characterization(store, emit, once):
    def compute():
        rows = []
        for name in ALL_WORKLOADS:
            spec, trace = store.workload(name)
            sim = SystemSimulator(spec, options=SimulatorOptions(dynamic=False))
            result = sim.run(trace)
            t3 = result.table3_row(KERNEL_COMPUTE_SHARE[name])
            rows.append(
                [
                    name,
                    t3["total_cpu_sec"],
                    spec.memory_mb,
                    t3["% user"],
                    t3["% kernel"],
                    t3["% idle"],
                    t3["kernel instr stall %"],
                    t3["kernel data stall %"],
                    t3["user instr stall %"],
                    t3["user data stall %"],
                ]
            )
        return rows

    rows = once(compute)
    emit(
        "table3_characterization",
        format_table(
            "Table 3: Execution time and memory usage (first-touch runs)",
            ["Workload", "CPU(s)", "MB", "%User", "%Kern", "%Idle",
             "K-Instr%", "K-Data%", "U-Instr%", "U-Data%"],
            rows,
        ),
    )
    by_name = {r[0]: r for r in rows}
    # Shape checks against the paper's characterisation.
    eng = by_name["engineering"]
    assert eng[8] + eng[9] > 50          # dominant user stall
    pmake = by_name["pmake"]
    assert pmake[7] > pmake[9]           # kernel data stall dominates pmake
    db = by_name["database"]
    assert db[5] > 25                    # database is idle-heavy
    assert db[9] > db[8] * 3             # and its stall is data, not instr

"""Figure 3: performance improvement of the base policy over first touch.

For each of the four user workloads, the execution time is decomposed into
kernel migration/replication overhead, remote stall, local stall and all
other time; the percentage of misses satisfied locally annotates each bar.

Paper results: memory-stall reductions of 52 % (engineering), 36 %
(raytrace), 24 % (splash) and 10 % (database); total execution-time
improvements of 29 %, 15 %, 4 % and 5 %.
"""

from conftest import USER_WORKLOADS

from repro.analysis.tables import format_bar_figure, format_table


def test_fig3_base_policy_vs_first_touch(store, emit, once):
    def compute():
        return {name: store.fig3(name) for name in USER_WORKLOADS}

    results = once(compute)
    bars = []
    annotations = {}
    rows = []
    for name in USER_WORKLOADS:
        ft, mr = results[name]["FT"], results[name]["Mig/Rep"]
        for label, r in (("FT", ft), ("Mig/Rep", mr)):
            key = f"{name}/{label}"
            bars.append(
                (
                    key,
                    {
                        "kernel overhead (s)": r.kernel_overhead_ns / 1e9,
                        "remote stall (s)": r.stall.remote_ns / 1e9,
                        "local stall (s)": r.stall.local_ns / 1e9,
                        "other (s)": (r.compute_time_ns + r.idle_time_ns) / 1e9,
                    },
                )
            )
            annotations[key] = f"{r.local_miss_fraction * 100:.0f}% of misses local"
        rows.append(
            [
                name,
                mr.stall_reduction_over(ft),
                mr.improvement_over(ft),
                ft.local_miss_fraction * 100,
                mr.local_miss_fraction * 100,
            ]
        )
    emit(
        "fig3_bars",
        format_bar_figure(
            "Figure 3: Execution time, FT vs Mig/Rep", bars,
            total_label="exec s", annotations=annotations,
        ),
    )
    emit(
        "fig3_summary",
        format_table(
            "Figure 3 summary (paper: stall red. 52/36/24/10 %, exec imp. 29/15/4/5 %)",
            ["Workload", "Stall red. %", "Exec imp. %", "FT local %",
             "Mig/Rep local %"],
            rows,
        ),
    )
    by_name = {r[0]: r for r in rows}
    # The ordering of gains holds: engineering > raytrace > splash/database.
    assert by_name["engineering"][1] > by_name["raytrace"][1]
    assert by_name["raytrace"][1] > by_name["database"][1]
    for name in USER_WORKLOADS:
        assert by_name[name][1] >= 0          # never worse on stall
        assert by_name[name][4] > by_name[name][3]   # locality improves

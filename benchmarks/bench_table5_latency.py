"""Table 5: latency of the pager-implementation steps.

Per-operation end-to-end latency broken into the Figure 2 steps, averaged
over the run, shown separately for replications and migrations.

Paper totals: 394-486 us for replication, 448-516 us for migration, with
engineering's page allocation inflated (184 us) by memlock contention and
migration's Links & Mapping costlier than replication's (hash-table swap
under memlock versus replica chain under a page lock).
"""

from conftest import params_for

from repro.analysis.tables import format_table
from repro.kernel.pager.costs import OpType

WORKLOADS = ("engineering", "raytrace", "splash")


def test_table5_operation_latencies(store, emit, once):
    def compute():
        rows = []
        for name in WORKLOADS:
            acct = store.fig3(name)["Mig/Rep"].accounting
            for op, label in (
                (OpType.REPLICATION, "Repl."),
                (OpType.MIGRATION, "Migr."),
            ):
                if acct.op_counts[op] == 0:
                    continue
                r = acct.table5_row(op)
                rows.append(
                    [
                        name,
                        label,
                        r["Intr. Proc"],
                        r["Policy Decision"],
                        r["Page Alloc"],
                        r["Links & Mapping"],
                        r["TLB Flush"],
                        r["Page Copying"],
                        r["Policy End"],
                        r["Total Latency"],
                    ]
                )
        return rows

    rows = once(compute)
    emit(
        "table5_latency",
        format_table(
            "Table 5: Latency of policy-implementation steps (us; paper "
            "totals 394-516 us)",
            ["Workload", "Op", "Intr", "Decide", "Alloc", "Links",
             "Flush", "Copy", "End", "Total"],
            rows,
        ),
    )
    for row in rows:
        assert 250 < row[9] < 1100        # total within 2x of paper's range
    migr = [r for r in rows if r[1] == "Migr."]
    repl = [r for r in rows if r[1] == "Repl."]
    for m in migr:
        matching = [r for r in repl if r[0] == m[0]]
        if matching:
            # Migration's links & mapping step is the costlier one.
            assert m[5] > matching[0][5]

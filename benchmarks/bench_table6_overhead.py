"""Table 6: breakdown of total kernel overhead by function.

The percentage of all kernel page-movement overhead attributable to each
function, plus the total overhead in seconds.  The paper's headline: TLB
flushing leads (34-54 %) because every processor must flush, page
allocation is second (memlock contention), and the actual byte copy is
only ~10 % — plus the simulated "tracked mappings" flush that cuts total
overhead by ~25 %.
"""

from conftest import params_for

from repro.analysis.tables import format_table
from repro.kernel.pager.costs import CostCategory
from repro.kernel.vm.shootdown import ShootdownMode
from repro.sim.simulator import run_policy_comparison

WORKLOADS = ("engineering", "raytrace", "splash")

COLUMNS = [
    CostCategory.TLB_FLUSH,
    CostCategory.PAGE_ALLOC,
    CostCategory.PAGE_COPY,
    CostCategory.PAGE_FAULT,
    CostCategory.LINKS_MAPPING,
    CostCategory.POLICY_END,
    CostCategory.POLICY_DECISION,
    CostCategory.INTR_PROC,
]


def test_table6_overhead_breakdown(store, emit, once):
    def compute():
        rows = []
        for name in WORKLOADS:
            r = store.fig3(name)["Mig/Rep"]
            pct = r.accounting.overhead_percentages()
            rows.append(
                [name, r.kernel_overhead_ns / 1e9]
                + [pct[c] for c in COLUMNS]
            )
        return rows

    rows = once(compute)
    emit(
        "table6_overhead",
        format_table(
            "Table 6: Kernel overhead by function (% of total; paper: "
            "flush 34-54, alloc 8-26, copy ~10)",
            ["Workload", "Ovhd (s)", "Flush", "Alloc", "Copy", "Fault",
             "Links", "End", "Decide", "Intr"],
            rows,
        ),
    )
    for row in rows:
        flush, alloc, copy = row[2], row[3], row[4]
        # Flushing and allocation are the two leading costs...
        assert flush + alloc > 40
        # ... and the byte copy is nowhere near dominant (paper: ~10 %).
        assert copy < 20


def test_table6_tracked_flush_saving(store, emit, once):
    """Tracking mapped CPUs cuts total kernel overhead ~25 % (paper)."""

    def compute():
        spec, trace = store.workload("engineering")
        full = store.fig3("engineering")["Mig/Rep"]
        tracked = run_policy_comparison(
            spec, trace, params=params_for("engineering"),
            shootdown_mode=ShootdownMode.TRACKED,
        )["Mig/Rep"]
        return full, tracked

    full, tracked = once(compute)
    saving = 100 * (1 - tracked.kernel_overhead_ns / full.kernel_overhead_ns)
    avg_flushed = tracked.extra["tlbs_flushed"] / max(
        tracked.extra["flush_operations"], 1
    )
    emit(
        "table6_tracked_flush",
        format_table(
            "Tracked-mapping TLB flush (paper: ~25% overhead saving, "
            "~2 TLBs flushed instead of 8)",
            ["Mode", "Overhead (s)", "Avg TLBs/flush"],
            [
                ["all-CPUs", full.kernel_overhead_ns / 1e9,
                 full.extra["tlbs_flushed"]
                 / max(full.extra["flush_operations"], 1)],
                ["tracked", tracked.kernel_overhead_ns / 1e9, avg_flushed],
                ["saving %", saving, 0.0],
            ],
        ),
    )
    assert 8 < saving < 45
    assert avg_flushed < 5

"""Section 7.2.3: replication space overhead.

Replication costs memory.  The hot-page selection keeps the growth modest
(paper: +32 % for engineering, +20 % for raytrace), whereas replicating
code on first touch would cost +500 % for engineering's six instances of
each application.
"""

from conftest import params_for

from repro.analysis.tables import format_table
from repro.workloads.spec import SharingClass

WORKLOADS = ("engineering", "raytrace")


def naive_code_replication_growth(spec):
    """Memory growth if every accessor node replicated all code pages."""
    code_pages = 0
    replicas = 0
    for inst in spec.instances:
        if inst.spec.sharing is not SharingClass.CODE:
            continue
        accessors = (
            len(inst.spec.accessors)
            if inst.spec.accessors is not None
            else len(spec.processes)
        )
        code_pages += inst.n_pages
        replicas += inst.n_pages * max(accessors - 1, 0)
    return replicas / code_pages if code_pages else 0.0


def test_sec723_replication_space(store, emit, once):
    def compute():
        rows = []
        for name in WORKLOADS:
            spec, _ = store.workload(name)
            result = store.fig3(name)["Mig/Rep"]
            rows.append(
                [
                    name,
                    result.base_pages,
                    result.peak_replica_frames,
                    result.replication_space_overhead * 100,
                    naive_code_replication_growth(spec) * 100,
                ]
            )
        return rows

    rows = once(compute)
    emit(
        "sec723_repl_space",
        format_table(
            "Section 7.2.3: replication space overhead "
            "(paper: eng +32%, raytrace +20%; replicate-code-on-first-touch "
            "would cost eng +500% on code)",
            ["Workload", "Base pages", "Peak replicas", "Hot-page growth %",
             "Naive code growth %"],
            rows,
        ),
    )
    by_name = {r[0]: r for r in rows}
    for name in WORKLOADS:
        # Hot-page selection keeps growth far below naive replication.
        assert by_name[name][3] < 60
        assert by_name[name][3] > 2
    # Engineering's six copies of each binary make naive replication ~500%.
    assert by_name["engineering"][4] == 500.0

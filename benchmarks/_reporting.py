"""Shared bench reporting: one call emits the text table AND the JSON twin.

Converted benches build a :class:`BenchRun`, add their metrics, and call
:meth:`BenchRun.emit` with the rendered table.  The table lands in
``benchmarks/results/<name>.txt`` (pytest-capture-proof, as before) and
the metrics land in ``benchmarks/results/BENCH_<name>.json`` — the
schema-versioned artifact ``repro bench --compare`` gates on.

Metric conventions (see ``docs/PERFORMANCE.md``):

* name dotted, lowercase: ``speedup.all``, ``wall_s.scalar``;
* ``direction`` points the way improvement points;
* set a ``tolerance`` only on machine-portable metrics (ratios); leave
  absolute seconds/bytes ungated (``tolerance=None``) so the committed
  CI baseline never fails on container speed.

Converted so far: ``replay_fastpath``, ``trace_store``,
``obs_overhead``.  The figure/table benches
(``bench_fig*``/``bench_table*``/``bench_sec*``/``bench_ablations``,
``bench_baseline_competitive``) still emit text only; convert them the
same way when their numbers need gating.
"""

from __future__ import annotations

import platform
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.bench import BenchArtifact
from repro.obs.prof import resource_usage


def bench_context(**extra: Any) -> Dict[str, Any]:
    """Environment fingerprint stored in every artifact's ``context``.

    Informational only — comparisons never gate on context, but a
    surprising regression is much easier to diagnose when the artifact
    says what produced it.
    """
    context: Dict[str, Any] = {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }
    context.update(extra)
    return context


class BenchRun:
    """One bench's dual-format report (text + ``BENCH_<name>.json``)."""

    def __init__(
        self,
        name: str,
        results_dir: Path,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.artifact = BenchArtifact(
            name=name, context=bench_context(**(context or {}))
        )
        self.results_dir = Path(results_dir)

    def metric(
        self,
        name: str,
        value: float,
        unit: str = "",
        direction: str = "higher",
        tolerance: Optional[float] = None,
    ) -> None:
        """Record one metric for the JSON artifact."""
        self.artifact.add(
            name, value, unit=unit, direction=direction, tolerance=tolerance
        )

    def emit(self, text: str) -> str:
        """Print ``text``, write the ``.txt``, and write the JSON twin.

        Every artifact automatically records the process's resource
        telemetry (peak RSS, user/sys CPU time) so the run-history store
        can trend memory and CPU per bench; these are informational
        (``tolerance=None``) — scale-tier targets gate on the *history*
        bands, not on a committed absolute.
        """
        for name, value in sorted(resource_usage().items()):
            unit = "bytes" if name.endswith("_bytes") else "s"
            self.artifact.add(
                f"resource.{name}", value, unit=unit, direction="lower"
            )
        print()
        print(text)
        self.results_dir.mkdir(exist_ok=True)
        (self.results_dir / f"{self.artifact.name}.txt").write_text(
            text + "\n"
        )
        self.artifact.write(self.results_dir)
        return text

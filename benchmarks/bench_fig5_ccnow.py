"""Figure 5: CC-NUMA versus CC-NOW for the engineering workload.

CC-NOW raises the minimum remote miss latency to 3000 ns (1000 ft of
fiber).  The paper: migration/replication cuts user memory stall by 53 %
and overall execution time by 30 % on CC-NOW — better than CC-NUMA in
absolute terms, but *sublinear* in the latency ratio because controller
occupancy already inflates CC-NUMA's remote latency and the per-operation
cost grows to ~600 us.
"""

from conftest import params_for

from repro.analysis.tables import format_bar_figure, format_table
from repro.kernel.pager.costs import KernelCostModel, OpType
from repro.machine.config import MachineConfig
from repro.sim.simulator import run_policy_comparison


def test_fig5_ccnuma_vs_ccnow(store, emit, once):
    def compute():
        spec, trace = store.workload("engineering")
        machine = MachineConfig.flash_ccnow(
            n_cpus=spec.n_cpus, n_nodes=spec.n_nodes
        )
        ccnow = run_policy_comparison(
            spec, trace, machine=machine, params=params_for("engineering")
        )
        return store.fig3("engineering"), ccnow

    ccnuma, ccnow = once(compute)
    bars = []
    for arch, results in (("CC-NUMA", ccnuma), ("CC-NOW", ccnow)):
        for label in ("FT", "Mig/Rep"):
            r = results[label]
            bars.append(
                (
                    f"{arch}/{label}",
                    {
                        "kernel overhead (s)": r.kernel_overhead_ns / 1e9,
                        "stall (s)": r.stall.total_ns / 1e9,
                        "other non-idle (s)": r.compute_time_ns / 1e9,
                    },
                )
            )
    emit(
        "fig5_bars",
        format_bar_figure(
            "Figure 5: non-idle execution time, CC-NUMA vs CC-NOW "
            "(engineering)",
            bars, total_label="non-idle s",
        ),
    )
    numa_red = ccnuma["Mig/Rep"].stall_reduction_over(ccnuma["FT"])
    now_red = ccnow["Mig/Rep"].stall_reduction_over(ccnow["FT"])
    numa_imp = ccnuma["Mig/Rep"].improvement_over(ccnuma["FT"])
    now_imp = ccnow["Mig/Rep"].improvement_over(ccnow["FT"])
    op_cost_now = KernelCostModel.for_machine(
        MachineConfig.flash_ccnow()
    )
    per_op_us = ccnow["Mig/Rep"].accounting.mean_op_latency_us(
        OpType.REPLICATION
    )
    emit(
        "fig5_summary",
        format_table(
            "Figure 5 summary (paper: CC-NOW stall -53%, exec -30%; "
            "op cost grows to ~600 us)",
            ["Metric", "CC-NUMA", "CC-NOW"],
            [
                ["stall reduction %", numa_red, now_red],
                ["exec improvement %", numa_imp, now_imp],
                ["mean replication latency (us)",
                 ccnuma["Mig/Rep"].accounting.mean_op_latency_us(
                     OpType.REPLICATION
                 ),
                 per_op_us],
            ],
        ),
    )
    assert now_red > numa_red                 # CC-NOW gains more
    assert now_imp > numa_imp
    # ... but the operation itself got costlier (paper: ~450 -> ~600 us).
    assert per_op_us > ccnuma["Mig/Rep"].accounting.mean_op_latency_us(
        OpType.REPLICATION
    ) * 1.1
    del op_cost_now

"""Observability overhead: instrumentation must be free when unused.

The ``repro.obs`` layer promises zero cost when disabled: call sites
guard event construction behind ``tracer.active``, metric registration
is collect-time-only, and profiler spans wrap phases (never per-event
loop bodies), so a disabled profiler costs one attribute check per
phase.  This bench holds the promise to numbers:

* a full-system Mig/Rep run with a *disabled* tracer (plus an attached
  counting sink and an external metrics registry) must stay within 5%
  of the plain uninstrumented run's wall time, and the sink must have
  seen exactly zero events;
* the same run with a *disabled* profiler must stay within 2% — the
  span seams are phase-level, so the disabled path is a handful of
  no-op ``span()`` calls per run.

A second artifact (``obs_analyze``) gates the *enabled* analysis path:
post-hoc attribution of a miss-traced decision log must stay cheap
relative to the traced replay that produced it — the analyzer is one
streaming pass over the events, so if its wall time creeps toward the
simulation's, something in ``repro.obs.attrib`` went quadratic.

Timing uses best-of-N with alternating order so scheduler noise and
cache warmup hit both variants evenly.  ``REPRO_OBS_BENCH_SCALE``
overrides the workload scale (default 0.25, the issue's reference
point; CI smoke runs use a smaller value).
"""

import os
import time

from conftest import params_for

from repro.analysis.tables import format_table
from repro.obs.attrib import Attribution, expected_from_policysim
from repro.obs.prof import Profiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import CountingSink, ListSink, Tracer
from repro.sim.simulator import SimulatorOptions, SystemSimulator
from repro.trace.policysim import PolicySimConfig, TracePolicySimulator
from repro.workloads import build_spec, generate_trace

#: The issue's reference point: the engineering workload at scale 0.25.
OBS_BENCH_SCALE = float(os.environ.get("REPRO_OBS_BENCH_SCALE", "0.25"))
ROUNDS = 3
TRACER_TOLERANCE = 1.05
PROFILER_TOLERANCE = 1.02
#: Analyzing a log must cost at most as much as the traced replay that
#: wrote it (in practice it is a small fraction of it).
ANALYZE_TOLERANCE = 1.0


def _run(spec, trace, tracer=None, metrics=None, profiler=None) -> float:
    """One full Mig/Rep run; returns wall seconds of the hot loop."""
    sim = SystemSimulator(
        spec,
        params=params_for("engineering"),
        options=SimulatorOptions(dynamic=True),
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    start = time.perf_counter()
    sim.run(trace)
    return time.perf_counter() - start


def test_disabled_instrumentation_overhead(report, once):
    spec = build_spec("engineering", scale=OBS_BENCH_SCALE, seed=0)
    trace = generate_trace(spec)
    sink = CountingSink()

    def compute():
        times = {"baseline": [], "tracer": [], "profiler": []}
        _run(spec, trace)  # warmup: caches, allocator, JIT-free but fair
        for round_idx in range(ROUNDS):
            variants = [
                ("baseline", {}),
                ("tracer", dict(
                    tracer=Tracer(sinks=[sink], enabled=False),
                    metrics=MetricsRegistry(),
                )),
                ("profiler", dict(profiler=Profiler(enabled=False))),
            ]
            # Rotate the order so warmth and scheduler noise hit every
            # variant evenly across rounds.
            rotated = variants[round_idx % 3:] + variants[:round_idx % 3]
            for label, kwargs in rotated:
                times[label].append(_run(spec, trace, **kwargs))
        return {label: min(values) for label, values in times.items()}

    best = once(compute)
    tracer_ratio = best["tracer"] / best["baseline"]
    profiler_ratio = best["profiler"] / best["baseline"]

    run = report("obs_overhead", scale=OBS_BENCH_SCALE, rounds=ROUNDS)
    # The two ratios are the contract; gate them with room for container
    # noise above their in-bench assertion budgets.
    run.metric(
        "ratio.disabled_tracer", tracer_ratio,
        direction="lower", tolerance=0.10,
    )
    run.metric(
        "ratio.disabled_profiler", profiler_ratio,
        direction="lower", tolerance=0.10,
    )
    run.metric(
        "wall_s.baseline", best["baseline"], unit="s", direction="lower"
    )
    run.emit(
        format_table(
            "Observability overhead when disabled (engineering, scale "
            f"{OBS_BENCH_SCALE})",
            ["Variant", "Best wall time (s)", "Ratio", "Budget"],
            [
                ["uninstrumented", best["baseline"], 1.0, "-"],
                ["disabled tracer + registry", best["tracer"], tracer_ratio,
                 f"{(TRACER_TOLERANCE - 1) * 100:.0f}%"],
                ["disabled profiler", best["profiler"], profiler_ratio,
                 f"{(PROFILER_TOLERANCE - 1) * 100:.0f}%"],
            ],
        ),
    )
    assert sink.count == 0, "a disabled tracer must never reach its sinks"
    assert tracer_ratio <= TRACER_TOLERANCE, (
        f"disabled instrumentation cost {100 * (tracer_ratio - 1):.1f}% "
        f"(budget {100 * (TRACER_TOLERANCE - 1):.0f}%)"
    )
    assert profiler_ratio <= PROFILER_TOLERANCE, (
        f"disabled profiler cost {100 * (profiler_ratio - 1):.1f}% "
        f"(budget {100 * (PROFILER_TOLERANCE - 1):.0f}%)"
    )


def test_analyzer_overhead(report, once):
    """Post-hoc attribution vs. the traced replay that fed it."""
    spec = build_spec("engineering", scale=OBS_BENCH_SCALE, seed=0)
    trace = generate_trace(spec)
    stream = trace.user_only()
    params = params_for("engineering")
    config = PolicySimConfig(
        n_cpus=spec.n_cpus, n_nodes=spec.n_nodes, engine="scalar"
    )

    def compute():
        replay_s, analyze_s = [], []
        events, result, attrib = [], None, None
        for _ in range(ROUNDS):
            sink = ListSink()
            tracer = Tracer(capacity=1, sinks=[sink])
            sim = TracePolicySimulator(config, tracer=tracer)
            start = time.perf_counter()
            result = sim.simulate_dynamic(stream, params)
            replay_s.append(time.perf_counter() - start)
            tracer.close()
            events = sink.events
            start = time.perf_counter()
            attrib = Attribution.from_events(events)
            analyze_s.append(time.perf_counter() - start)
        errors = attrib.reconcile(expected_from_policysim(result))
        return {
            "replay": min(replay_s),
            "analyze": min(analyze_s),
            "events": len(events),
            "errors": errors,
        }

    best = once(compute)
    ratio = best["analyze"] / best["replay"]
    events_per_s = best["events"] / best["analyze"]

    run = report("obs_analyze", scale=OBS_BENCH_SCALE, rounds=ROUNDS)
    run.metric(
        "ratio.analyze_vs_traced_replay", ratio,
        direction="lower", tolerance=0.25,
    )
    run.metric("wall_s.analyze", best["analyze"], unit="s",
               direction="lower")
    run.metric("events_per_s", events_per_s, unit="ev/s")
    run.emit(
        format_table(
            f"Analyzer throughput (engineering, scale {OBS_BENCH_SCALE})",
            ["Stage", "Best wall time (s)", "Events", "Ratio"],
            [
                ["traced scalar replay", best["replay"], best["events"],
                 1.0],
                ["attribution pass", best["analyze"], best["events"],
                 ratio],
            ],
        ),
    )
    assert best["errors"] == [], (
        f"attribution failed to reconcile: {best['errors']}"
    )
    assert ratio <= ANALYZE_TOLERANCE, (
        f"analyzing cost {ratio:.2f}x the traced replay "
        f"(budget {ANALYZE_TOLERANCE:.2f}x)"
    )

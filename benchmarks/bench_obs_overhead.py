"""Observability overhead: instrumentation must be free when unused.

The ``repro.obs`` layer promises zero cost when disabled: call sites
guard event construction behind ``tracer.active``, metric registration
is collect-time-only, and profiler spans wrap phases (never per-event
loop bodies), so a disabled profiler costs one attribute check per
phase.  This bench holds the promise to numbers:

* a full-system Mig/Rep run with a *disabled* tracer (plus an attached
  counting sink and an external metrics registry) must stay within 5%
  of the plain uninstrumented run's wall time, and the sink must have
  seen exactly zero events;
* the same run with a *disabled* profiler must stay within 2% — the
  span seams are phase-level, so the disabled path is a handful of
  no-op ``span()`` calls per run.

Timing uses best-of-N with alternating order so scheduler noise and
cache warmup hit both variants evenly.  ``REPRO_OBS_BENCH_SCALE``
overrides the workload scale (default 0.25, the issue's reference
point; CI smoke runs use a smaller value).
"""

import os
import time

from conftest import params_for

from repro.analysis.tables import format_table
from repro.obs.prof import Profiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import CountingSink, Tracer
from repro.sim.simulator import SimulatorOptions, SystemSimulator
from repro.workloads import build_spec, generate_trace

#: The issue's reference point: the engineering workload at scale 0.25.
OBS_BENCH_SCALE = float(os.environ.get("REPRO_OBS_BENCH_SCALE", "0.25"))
ROUNDS = 3
TRACER_TOLERANCE = 1.05
PROFILER_TOLERANCE = 1.02


def _run(spec, trace, tracer=None, metrics=None, profiler=None) -> float:
    """One full Mig/Rep run; returns wall seconds of the hot loop."""
    sim = SystemSimulator(
        spec,
        params=params_for("engineering"),
        options=SimulatorOptions(dynamic=True),
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    start = time.perf_counter()
    sim.run(trace)
    return time.perf_counter() - start


def test_disabled_instrumentation_overhead(report, once):
    spec = build_spec("engineering", scale=OBS_BENCH_SCALE, seed=0)
    trace = generate_trace(spec)
    sink = CountingSink()

    def compute():
        times = {"baseline": [], "tracer": [], "profiler": []}
        _run(spec, trace)  # warmup: caches, allocator, JIT-free but fair
        for round_idx in range(ROUNDS):
            variants = [
                ("baseline", {}),
                ("tracer", dict(
                    tracer=Tracer(sinks=[sink], enabled=False),
                    metrics=MetricsRegistry(),
                )),
                ("profiler", dict(profiler=Profiler(enabled=False))),
            ]
            # Rotate the order so warmth and scheduler noise hit every
            # variant evenly across rounds.
            rotated = variants[round_idx % 3:] + variants[:round_idx % 3]
            for label, kwargs in rotated:
                times[label].append(_run(spec, trace, **kwargs))
        return {label: min(values) for label, values in times.items()}

    best = once(compute)
    tracer_ratio = best["tracer"] / best["baseline"]
    profiler_ratio = best["profiler"] / best["baseline"]

    run = report("obs_overhead", scale=OBS_BENCH_SCALE, rounds=ROUNDS)
    # The two ratios are the contract; gate them with room for container
    # noise above their in-bench assertion budgets.
    run.metric(
        "ratio.disabled_tracer", tracer_ratio,
        direction="lower", tolerance=0.10,
    )
    run.metric(
        "ratio.disabled_profiler", profiler_ratio,
        direction="lower", tolerance=0.10,
    )
    run.metric(
        "wall_s.baseline", best["baseline"], unit="s", direction="lower"
    )
    run.emit(
        format_table(
            "Observability overhead when disabled (engineering, scale "
            f"{OBS_BENCH_SCALE})",
            ["Variant", "Best wall time (s)", "Ratio", "Budget"],
            [
                ["uninstrumented", best["baseline"], 1.0, "-"],
                ["disabled tracer + registry", best["tracer"], tracer_ratio,
                 f"{(TRACER_TOLERANCE - 1) * 100:.0f}%"],
                ["disabled profiler", best["profiler"], profiler_ratio,
                 f"{(PROFILER_TOLERANCE - 1) * 100:.0f}%"],
            ],
        ),
    )
    assert sink.count == 0, "a disabled tracer must never reach its sinks"
    assert tracer_ratio <= TRACER_TOLERANCE, (
        f"disabled instrumentation cost {100 * (tracer_ratio - 1):.1f}% "
        f"(budget {100 * (TRACER_TOLERANCE - 1):.0f}%)"
    )
    assert profiler_ratio <= PROFILER_TOLERANCE, (
        f"disabled profiler cost {100 * (profiler_ratio - 1):.1f}% "
        f"(budget {100 * (PROFILER_TOLERANCE - 1):.0f}%)"
    )

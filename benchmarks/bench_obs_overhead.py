"""Observability overhead: instrumentation must be free when unused.

The ``repro.obs`` layer promises zero cost when disabled: call sites
guard event construction behind ``tracer.active`` and metric
registration is collect-time-only.  This bench holds the promise to a
number — a full-system Mig/Rep run with a *disabled* tracer (plus an
attached counting sink and an external metrics registry) must stay
within 5% of the plain uninstrumented run's wall time, and the sink
must have seen exactly zero events.

Timing uses best-of-N with alternating order so scheduler noise and
cache warmup hit both variants evenly.
"""

import time

from conftest import params_for

from repro.analysis.tables import format_table
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import CountingSink, Tracer
from repro.sim.simulator import SimulatorOptions, SystemSimulator
from repro.workloads import build_spec, generate_trace

#: The issue's reference point: the engineering workload at scale 0.25.
OBS_BENCH_SCALE = 0.25
ROUNDS = 3
TOLERANCE = 1.05


def _run(spec, trace, tracer=None, metrics=None) -> float:
    """One full Mig/Rep run; returns wall seconds of the hot loop."""
    sim = SystemSimulator(
        spec,
        params=params_for("engineering"),
        options=SimulatorOptions(dynamic=True),
        tracer=tracer,
        metrics=metrics,
    )
    start = time.perf_counter()
    sim.run(trace)
    return time.perf_counter() - start


def test_disabled_instrumentation_overhead(emit, once):
    spec = build_spec("engineering", scale=OBS_BENCH_SCALE, seed=0)
    trace = generate_trace(spec)
    sink = CountingSink()

    def compute():
        baseline_times, disabled_times = [], []
        _run(spec, trace)  # warmup: caches, allocator, JIT-free but fair
        for round_idx in range(ROUNDS):
            pair = [
                ("baseline", None, None),
                ("disabled", Tracer(sinks=[sink], enabled=False),
                 MetricsRegistry()),
            ]
            if round_idx % 2:
                pair.reverse()
            for label, tracer, metrics in pair:
                elapsed = _run(spec, trace, tracer=tracer, metrics=metrics)
                (baseline_times if label == "baseline"
                 else disabled_times).append(elapsed)
        return min(baseline_times), min(disabled_times)

    baseline, disabled = once(compute)
    ratio = disabled / baseline
    emit(
        "obs_overhead",
        format_table(
            "Observability overhead when disabled (engineering, scale "
            f"{OBS_BENCH_SCALE}; budget {(TOLERANCE - 1) * 100:.0f}%)",
            ["Variant", "Best wall time (s)", "Ratio"],
            [
                ["uninstrumented", baseline, 1.0],
                ["disabled tracer + registry", disabled, ratio],
            ],
        ),
    )
    assert sink.count == 0, "a disabled tracer must never reach its sinks"
    assert ratio <= TOLERANCE, (
        f"disabled instrumentation cost {100 * (ratio - 1):.1f}% "
        f"(budget {100 * (TOLERANCE - 1):.0f}%)"
    )

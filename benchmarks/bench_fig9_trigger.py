"""Figure 9: variation in performance with the trigger threshold.

Each workload runs with trigger thresholds 32, 64, 128 and 256 (sharing
threshold a quarter of the trigger).  The trade-off the paper shows: a
smaller trigger is more aggressive — more misses made local but more
kernel overhead — and the best operating point depends on the workload.
"""

from conftest import USER_WORKLOADS

from repro.analysis.tables import format_table
from repro.policy.parameters import PolicyParameters
from repro.trace.policysim import PolicySimConfig, TracePolicySimulator

TRIGGERS = (32, 64, 128, 256)


def test_fig9_trigger_threshold_sweep(store, emit, once):
    def compute():
        out = {}
        for name in USER_WORKLOADS:
            spec, trace = store.workload(name)
            user = trace.user_only()
            sim = TracePolicySimulator(
                PolicySimConfig(n_cpus=spec.n_cpus, n_nodes=spec.n_nodes)
            )
            out[name] = {
                trigger: sim.simulate_dynamic(
                    user, PolicyParameters.base(trigger_threshold=trigger)
                )
                for trigger in TRIGGERS
            }
        return out

    all_results = once(compute)
    rows = []
    for name, results in all_results.items():
        for trigger in TRIGGERS:
            r = results[trigger]
            rows.append(
                [
                    name,
                    trigger,
                    r.local_fraction * 100,
                    (r.stall_ns + r.overhead_ns) / 1e9,
                    r.overhead_ns / 1e9,
                    r.migrations + r.replications,
                ]
            )
    emit(
        "fig9_trigger",
        format_table(
            "Figure 9: trigger-threshold sweep (smaller trigger -> more "
            "locality, more overhead)",
            ["Workload", "Trigger", "Local %", "Stall+Ovhd (s)",
             "Overhead (s)", "Operations"],
            rows,
        ),
    )
    for name in USER_WORKLOADS:
        results = all_results[name]
        # Aggressiveness: operations decrease monotonically-ish with the
        # trigger, and locality never improves by raising it.
        ops = [results[t].migrations + results[t].replications
               for t in TRIGGERS]
        assert ops[0] >= ops[-1], name
        assert (
            results[32].local_fraction >= results[256].local_fraction - 0.02
        ), name
        # Overhead shrinks as the trigger grows.
        assert results[32].overhead_ns >= results[256].overhead_ns, name

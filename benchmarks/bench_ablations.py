"""Ablations of the design choices DESIGN.md calls out.

Three mechanisms the paper discusses qualitatively, measured head-on:

* **pipelined copy** — FLASH's MAGIC controller can copy a page
  memory-to-memory in ~35 us instead of the processor's ~100 us bcopy
  (Section 7.2.2); how much total overhead does that save?
* **interrupt batching** — the controller collects multiple hot pages per
  pager interrupt to amortise interrupt processing and the TLB flush;
  what does batch size 1 cost?
* **reset interval** — the counters approximate rates via periodic reset;
  shorter intervals react faster but re-trigger more.
"""

from conftest import params_for

from repro.analysis.tables import format_table
from repro.sim.simulator import SimulatorOptions, SystemSimulator


def run_with(store, name, **option_overrides):
    spec, trace = store.workload(name)
    params = params_for(name)
    if "batch_pages" in option_overrides:
        params = params.replace(
            batch_pages=option_overrides.pop("batch_pages")
        )
    if "reset_interval_ns" in option_overrides:
        params = params.replace(
            reset_interval_ns=option_overrides.pop("reset_interval_ns")
        )
    options = SimulatorOptions(dynamic=True, **option_overrides)
    return SystemSimulator(spec, params=params, options=options).run(trace)


def test_ablation_pipelined_copy(store, emit, once):
    def compute():
        processor = store.fig3("engineering")["Mig/Rep"]
        pipelined = run_with(store, "engineering", pipelined_copy=True)
        return processor, pipelined

    processor, pipelined = once(compute)
    rows = [
        ["processor bcopy", processor.kernel_overhead_ns / 1e9],
        ["MAGIC pipelined copy", pipelined.kernel_overhead_ns / 1e9],
        ["saving %", 100 * (1 - pipelined.kernel_overhead_ns
                            / processor.kernel_overhead_ns)],
    ]
    emit(
        "ablation_pipelined_copy",
        format_table(
            "Ablation: pipelined page copy (paper: bcopy ~100 us, MAGIC "
            "copy ~35 us, copy is ~10% of overhead)",
            ["Copy engine", "Kernel overhead (s)"],
            rows,
        ),
    )
    saving = rows[2][1]
    assert 2 < saving < 25       # copy is ~10 % of overhead, so savings are modest


def test_ablation_interrupt_batching(store, emit, once):
    def compute():
        batched = store.fig3("engineering")["Mig/Rep"]
        unbatched = run_with(store, "engineering", batch_pages=1)
        return batched, unbatched

    batched, unbatched = once(compute)
    rows = [
        ["batch = 4 pages", batched.kernel_overhead_ns / 1e9,
         batched.extra["flush_operations"]],
        ["batch = 1 page", unbatched.kernel_overhead_ns / 1e9,
         unbatched.extra["flush_operations"]],
    ]
    emit(
        "ablation_batching",
        format_table(
            "Ablation: hot-page batching (the controller collects pages "
            "to amortise interrupts and flushes)",
            ["Configuration", "Kernel overhead (s)", "TLB flush ops"],
            rows,
        ),
    )
    # Without batching, every operation pays its own interrupt + flush.
    assert unbatched.extra["flush_operations"] > batched.extra["flush_operations"]
    assert unbatched.kernel_overhead_ns > batched.kernel_overhead_ns


def test_ablation_reset_interval(store, emit, once):
    def compute():
        base = store.fig3("engineering")["Mig/Rep"]
        fast = run_with(store, "engineering", reset_interval_ns=25_000_000)
        slow = run_with(store, "engineering", reset_interval_ns=400_000_000)
        return fast, base, slow

    fast, base, slow = once(compute)
    rows = [
        ["25 ms", fast.local_miss_fraction * 100,
         fast.kernel_overhead_ns / 1e9, fast.tally.hot_pages],
        ["100 ms (paper)", base.local_miss_fraction * 100,
         base.kernel_overhead_ns / 1e9, base.tally.hot_pages],
        ["400 ms", slow.local_miss_fraction * 100,
         slow.kernel_overhead_ns / 1e9, slow.tally.hot_pages],
    ]
    emit(
        "ablation_reset_interval",
        format_table(
            "Ablation: counter reset interval",
            ["Interval", "Local %", "Overhead (s)", "Hot pages"],
            rows,
        ),
    )
    # Faster resets react sooner (more locality) but pay more overhead.
    assert fast.local_miss_fraction >= slow.local_miss_fraction - 0.01
    assert fast.kernel_overhead_ns >= slow.kernel_overhead_ns


def test_extension_hotspot_migration(store, emit, once):
    """Section 7.1.2's future-work idea: migrate even write-shared pages.

    The database's miss traffic concentrates on write-shared pages that
    the base policy refuses to touch; with hotspot migration each such
    page moves to its dominant sharer's node, trading controller load for
    locality.
    """

    def compute():
        base = store.fig3("database")["Mig/Rep"]
        spec, trace = store.workload("database")
        params = params_for("database").replace(hotspot_migration=True)
        from repro.sim.simulator import SimulatorOptions, SystemSimulator

        hotspot = SystemSimulator(
            spec, params=params, options=SimulatorOptions(dynamic=True)
        ).run(trace)
        return base, hotspot

    base, hotspot = once(compute)
    rows = [
        ["base policy", base.local_miss_fraction * 100,
         base.tally.migrated, base.kernel_overhead_ns / 1e9,
         base.contention.max_controller_occupancy],
        ["+ hotspot migration", hotspot.local_miss_fraction * 100,
         hotspot.tally.migrated, hotspot.kernel_overhead_ns / 1e9,
         hotspot.contention.max_controller_occupancy],
    ]
    emit(
        "extension_hotspot",
        format_table(
            "Extension (Section 7.1.2 future work): migrate write-shared "
            "pages toward their dominant sharer (database workload)",
            ["Policy", "Local %", "Migrations", "Overhead (s)",
             "Max ctrl occupancy"],
            rows,
            float_format="{:.3f}",
        ),
    )
    # More pages move, and locality does not get worse.
    assert hotspot.tally.migrated > base.tally.migrated
    assert hotspot.local_miss_fraction >= base.local_miss_fraction - 0.01


def test_extension_adaptive_trigger(store, emit, once):
    """Section 8.4's open problem: pick the trigger adaptively.

    A per-interval controller doubles the trigger when the pager blows
    its overhead budget and halves it when the pager idles while remote
    misses remain.  Compared against Figure 9's fixed settings, adaptive
    runs land near the good operating region from either bad start.
    """

    def compute():
        spec, trace = store.workload("engineering")
        rows = []
        for start in (32, 512):
            for adaptive in (False, True):
                params = params_for("engineering").replace(
                    trigger_threshold=start,
                    sharing_threshold=max(1, start // 4),
                )
                options = SimulatorOptions(
                    dynamic=True, adaptive_trigger=adaptive
                )
                r = SystemSimulator(
                    spec, params=params, options=options
                ).run(trace)
                rows.append(
                    [
                        start,
                        "adaptive" if adaptive else "fixed",
                        r.extra.get("final_trigger", float(start)),
                        r.local_miss_fraction * 100,
                        r.kernel_overhead_ns / 1e9,
                    ]
                )
        return rows

    rows = once(compute)
    emit(
        "extension_adaptive_trigger",
        format_table(
            "Extension (Section 8.4): adaptive trigger selection "
            "(engineering)",
            ["Start", "Mode", "Final trigger", "Local %", "Overhead (s)"],
            rows,
        ),
    )
    fixed = {r[0]: r for r in rows if r[1] == "fixed"}
    adaptive = {r[0]: r for r in rows if r[1] == "adaptive"}
    # A too-aggressive fixed start pays heavily; adaptive reins it in.
    assert adaptive[32][4] < fixed[32][4]
    # A too-timid fixed start leaves locality behind; adaptive recovers it.
    assert adaptive[512][3] > fixed[512][3] - 2.0
    # Both adaptive runs end in the same neighbourhood.
    assert abs(adaptive[32][3] - adaptive[512][3]) < 12.0

"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The heavy
inputs — the five workload traces and the FT / Mig/Rep full-system runs —
are produced once per session and shared.

The workload traces come through the shared
:class:`repro.store.TraceStore` (``$REPRO_TRACE_DIR`` or
``~/.cache/repro/traces``; see ``docs/TRACESTORE.md``): the first bench
session records each trace once and every later session — and every
``repro sweep`` / ``repro trace replay`` against the same store —
replays the recording instead of regenerating it.  Set
``REPRO_TRACE_STORE=0`` to force in-process regeneration.

The full-system runs additionally go through the :mod:`repro.exp` result
cache (same directory ``repro sweep`` uses — ``$REPRO_CACHE_DIR`` or
``~/.cache/repro/exp``), so a ``repro sweep --grid fig3`` warmed cache
makes ``pytest benchmarks/`` skip the simulations entirely, and vice
versa.  Both stores are content-addressed on identity + code version, so
they can never serve results from an older checkout; set
``REPRO_BENCH_NO_CACHE=1`` to bypass the result cache entirely.

Scale defaults to 1.0 (the paper's full run lengths); set the environment
variable ``REPRO_BENCH_SCALE`` to a smaller value for quick passes.
``REPRO_BENCH_JOBS`` (default 1) runs cache-missing FT/Mig/Rep pairs in
parallel worker processes.

Each bench prints its table and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.exp.cache import ResultCache
from repro.exp.runner import SweepRunner
from repro.exp.spec import ExperimentSpec
from repro.policy.parameters import PolicyParameters
from repro.sim.results import SimulationResult
from repro.trace.record import Trace
from repro.workloads import load_workload
from repro.workloads.spec import WorkloadSpec

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
BENCH_NO_CACHE = os.environ.get("REPRO_BENCH_NO_CACHE", "") not in ("", "0")
RESULTS_DIR = Path(__file__).parent / "results"

USER_WORKLOADS = ("engineering", "raytrace", "splash", "database")
ALL_WORKLOADS = USER_WORKLOADS + ("pmake",)


def params_for(name: str) -> PolicyParameters:
    """The paper's base policy: trigger 96 for engineering, 128 otherwise."""
    if name == "engineering":
        return PolicyParameters.engineering_base()
    return PolicyParameters.base()


class WorkloadStore:
    """Lazy, memoised workload and full-system-run store.

    Workload traces are shared with the library's ``load_workload`` memo;
    the FT / Mig/Rep comparisons delegate to the :mod:`repro.exp` sweep
    runner, which consults the shared content-addressed result cache
    before simulating anything.
    """

    def __init__(self) -> None:
        self._fig3: Dict[str, Dict[str, SimulationResult]] = {}
        self._cache = None if BENCH_NO_CACHE else ResultCache()
        self._runner = SweepRunner(cache=self._cache, jobs=BENCH_JOBS)

    def workload(self, name: str) -> Tuple[WorkloadSpec, Trace]:
        return load_workload(name, scale=BENCH_SCALE, seed=BENCH_SEED)

    def fig3(self, name: str) -> Dict[str, SimulationResult]:
        """FT and Mig/Rep full-system runs (cached; reused by Tables 4-6)."""
        if name not in self._fig3:
            specs = [
                ExperimentSpec(
                    workload=name, scale=BENCH_SCALE, seed=BENCH_SEED,
                    kind="system", policy=policy,
                )
                for policy in ("ft", "migrep")
            ]
            report = self._runner.run(specs)
            failed = report.failures
            if failed:
                raise RuntimeError(
                    f"full-system run failed for {name}: {failed[0].error}"
                )
            ft, mr = report.results
            self._fig3[name] = {"FT": ft, "Mig/Rep": mr}
        return self._fig3[name]


@pytest.fixture(scope="session")
def store() -> WorkloadStore:
    return WorkloadStore()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> str:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit


@pytest.fixture
def report():
    """A :class:`BenchRun` factory: text table + ``BENCH_<name>.json``.

    Usage::

        run = report("replay_fastpath", scale=BENCH_SCALE)
        run.metric("speedup.all", 4.2, unit="x", tolerance=0.25)
        run.emit(format_table(...))
    """
    from _reporting import BenchRun

    def _report(name: str, **context) -> BenchRun:
        return BenchRun(name, RESULTS_DIR, context=context)

    return _report


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once

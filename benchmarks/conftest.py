"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The heavy
inputs — the five workload traces and the FT / Mig/Rep full-system runs —
are produced once per session and shared.

Scale defaults to 1.0 (the paper's full run lengths); set the environment
variable ``REPRO_BENCH_SCALE`` to a smaller value for quick passes.

Each bench prints its table and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.policy.parameters import PolicyParameters
from repro.sim.results import SimulationResult
from repro.sim.simulator import run_policy_comparison
from repro.trace.record import Trace
from repro.workloads import build_spec, generate_trace
from repro.workloads.spec import WorkloadSpec

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
RESULTS_DIR = Path(__file__).parent / "results"

USER_WORKLOADS = ("engineering", "raytrace", "splash", "database")
ALL_WORKLOADS = USER_WORKLOADS + ("pmake",)


def params_for(name: str) -> PolicyParameters:
    """The paper's base policy: trigger 96 for engineering, 128 otherwise."""
    if name == "engineering":
        return PolicyParameters.engineering_base()
    return PolicyParameters.base()


class WorkloadStore:
    """Lazy, memoised workload and full-system-run store."""

    def __init__(self) -> None:
        self._workloads: Dict[str, Tuple[WorkloadSpec, Trace]] = {}
        self._fig3: Dict[str, Dict[str, SimulationResult]] = {}

    def workload(self, name: str) -> Tuple[WorkloadSpec, Trace]:
        if name not in self._workloads:
            spec = build_spec(name, scale=BENCH_SCALE, seed=BENCH_SEED)
            self._workloads[name] = (spec, generate_trace(spec))
        return self._workloads[name]

    def fig3(self, name: str) -> Dict[str, SimulationResult]:
        """FT and Mig/Rep full-system runs (cached; reused by Tables 4-6)."""
        if name not in self._fig3:
            spec, trace = self.workload(name)
            self._fig3[name] = run_policy_comparison(
                spec, trace, params=params_for(name)
            )
        return self._fig3[name]


@pytest.fixture(scope="session")
def store() -> WorkloadStore:
    return WorkloadStore()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> str:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once

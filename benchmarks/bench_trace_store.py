"""Trace store economics: what record-once/replay-many actually buys.

Two measurements back docs/TRACESTORE.md's performance claims:

* **wall clock** — generating each workload trace from its spec versus
  replaying the recorded container (zlib decode + validation).  The
  ratio is what every warm sweep worker and repeat bench session saves.
* **peak memory** — materialising the container in one go
  (``read_trace``) versus streaming it chunk by chunk (``iter_chunks``),
  measured with ``tracemalloc`` on the largest workload trace.
"""

import time
import tracemalloc

from conftest import ALL_WORKLOADS, BENCH_SCALE, BENCH_SEED

from repro.analysis.tables import format_table
from repro.store import TraceStore
from repro.store.format import ContainerReader, write_container
from repro.workloads import build_spec, generate_trace


def test_trace_store_cold_vs_warm(tmp_path_factory, report, once):
    root = tmp_path_factory.mktemp("bench-traces")
    store = TraceStore(root / "store", token="bench")

    def compute():
        measured = []
        for name in ALL_WORKLOADS:
            spec = build_spec(name, scale=BENCH_SCALE, seed=BENCH_SEED)

            t0 = time.perf_counter()
            trace = generate_trace(spec)
            generate_s = time.perf_counter() - t0

            store.put(spec.identity(), trace)
            t0 = time.perf_counter()
            replayed = store.get(spec.identity(), meta=spec)
            replay_s = time.perf_counter() - t0
            assert replayed is not None and len(replayed) == len(trace)
            measured.append((name, trace, generate_s, replay_s))
        return measured

    measured = once(compute)

    rows = []
    total_generate = total_replay = 0.0
    for name, trace, generate_s, replay_s in measured:
        total_generate += generate_s
        total_replay += replay_s
        rows.append([
            name, len(trace), generate_s, replay_s,
            generate_s / replay_s,
        ])
    speedup = total_generate / total_replay
    rows.append(["(all)", sum(len(t) for _, t, _, _ in measured),
                 total_generate, total_replay, speedup])

    # Peak memory: stream vs materialize the largest trace, re-chunked
    # small enough that the container is genuinely multi-chunk at any
    # REPRO_BENCH_SCALE.
    biggest = max(measured, key=lambda m: len(m[1]))[1]
    path = root / "biggest.rptc"
    write_container(path, biggest, chunk_records=max(4096, len(biggest) // 16))

    def peak_of(fn):
        tracemalloc.start()
        try:
            fn()
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    def materialize():
        with ContainerReader(path) as reader:
            reader.read_trace()

    def stream():
        with ContainerReader(path) as reader:
            total = 0
            for chunk in reader.iter_chunks():
                total += chunk.total_misses
            assert total == biggest.total_misses

    materialized_peak = peak_of(materialize)
    streaming_peak = peak_of(stream)

    run = report("trace_store", scale=BENCH_SCALE, seed=BENCH_SEED)
    # Gate the ratios (portable across machines); absolute seconds and
    # bytes are informational.
    run.metric("speedup.replay", speedup, unit="x", tolerance=0.5)
    run.metric(
        "peak_ratio.streaming", streaming_peak / materialized_peak,
        direction="lower", tolerance=0.5,
    )
    run.metric("wall_s.generate", total_generate, unit="s", direction="lower")
    run.metric("wall_s.replay", total_replay, unit="s", direction="lower")
    run.metric(
        "peak_bytes.materialized", materialized_peak, unit="B",
        direction="lower",
    )
    run.metric(
        "peak_bytes.streaming", streaming_peak, unit="B", direction="lower"
    )
    run.emit(
        format_table(
            f"Trace store: cold generate vs warm replay "
            f"(scale {BENCH_SCALE}, seed {BENCH_SEED})",
            ["Workload", "Records", "Generate (s)", "Replay (s)", "Speedup"],
            rows,
            float_format="{:.3f}",
        )
        + "\n\n"
        + format_table(
            f"Streaming replay peak memory ({len(biggest)} records)",
            ["Reader", "Peak (MB)", "vs materialized"],
            [
                ["read_trace", materialized_peak / 1e6, 1.0],
                ["iter_chunks", streaming_peak / 1e6,
                 streaming_peak / materialized_peak],
            ],
            float_format="{:.2f}",
        ),
    )

    # Replay must beat regeneration, and streaming must bound memory.
    assert speedup > 1.0, f"replay slower than generation: {speedup:.2f}x"
    assert streaming_peak < materialized_peak, (streaming_peak,
                                                materialized_peak)

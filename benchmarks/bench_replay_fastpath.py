"""Replay fastpath: the vectorized engine vs the scalar core.

docs/PERFORMANCE.md's headline claim — the vectorized engine replays
every path several times faster than the scalar core while producing
byte-identical results — is backed by this bench.  Every user workload
replays under both engines (same trace, same parameters) across the
full path matrix: the dynamic Mig/Rep cells with full-cache and
sampled-TLB metrics, the full-rate TLB-derived metric (the merged
driver-stream path), the competitive baseline, a traced Mig/Rep cell
(batched emission vs inline), and the four-policy PT table.  Results
are compared exactly with ``to_dict()`` and the wall-clock ratio is
reported per cell.
"""

import time

from conftest import BENCH_SCALE, USER_WORKLOADS, params_for

from repro.analysis.tables import format_table
from repro.obs.events import ALL_KINDS, MissServiced
from repro.obs.tracer import Tracer
from repro.policy.metrics import FULL_CACHE, FULL_TLB, SAMPLED_TLB
from repro.ptpol import PT_POLICIES, PtPolicySimulator, params_for_pt_policy
from repro.trace.policysim import PolicySimConfig, TracePolicySimulator
from repro.trace.tlbsim import derive_tlb_trace

METRICS = {"FC": FULL_CACHE, "ST": SAMPLED_TLB, "TLB": FULL_TLB}


def best_of(fn, *args, rounds=2):
    """Best-of-N wall time for one replay cell.

    Single-shot timings swing by tens of percent between adjacent cells
    (allocator and cache state left behind by the previous replay);
    the minimum of two runs is stable enough to commit as a baseline.
    """
    best = None
    for _ in range(rounds):
        out = fn(*args)
        if best is None or out[0] < best[0]:
            best = out
    return best


def _config(spec, engine):
    return PolicySimConfig(
        n_cpus=spec.n_cpus, n_nodes=spec.n_nodes, engine=engine
    )


def replay(spec, stream, params, metric, engine, driver):
    sim = TracePolicySimulator(_config(spec, engine))
    t0 = time.perf_counter()
    result = sim.simulate_dynamic(
        stream, params, metric=metric, driver_trace=driver
    )
    return time.perf_counter() - t0, result


def replay_competitive(spec, stream, engine):
    sim = TracePolicySimulator(_config(spec, engine))
    t0 = time.perf_counter()
    result = sim.simulate_competitive(stream)
    return time.perf_counter() - t0, result


def replay_traced(spec, stream, params, engine):
    # The decision stream, as `--trace-out` records it: per-miss events
    # are opt-in there and inherently O(events) to construct on either
    # engine, so they would only measure event construction.
    tracer = Tracer(
        capacity=1 << 10, kinds=ALL_KINDS - {MissServiced.KIND}
    )
    sim = TracePolicySimulator(_config(spec, engine), tracer=tracer)
    t0 = time.perf_counter()
    result = sim.simulate_dynamic(stream, params)
    return time.perf_counter() - t0, result, tracer.emitted


def replay_ptpol(spec, stream, engine, driver):
    # The full four-policy table, as `repro ptsim` replays it.  The
    # walk trace, like the TLB driver above, is derived once outside
    # the timed region: identical prep for both engines.
    results = []
    t0 = time.perf_counter()
    for policy in PT_POLICIES:
        sim = PtPolicySimulator(_config(spec, engine))
        results.append(
            sim.simulate(
                stream, params_for_pt_policy(policy), driver_trace=driver
            ).to_dict()
        )
    return time.perf_counter() - t0, results


def test_replay_fastpath_speedup(store, report, once):
    def compute():
        measured = []
        for name in USER_WORKLOADS:
            spec, trace = store.workload(name)
            stream = trace.user_only()
            params = params_for(name)
            for mlabel, metric in METRICS.items():
                # The TLB driver trace is derived once, outside the timed
                # region: it is metric preparation shared verbatim by both
                # engines, and timing it would only dilute the replay
                # comparison this bench exists to make.
                driver = (
                    derive_tlb_trace(stream, n_cpus=spec.n_cpus)
                    if metric.uses_tlb
                    else None
                )
                # Scalar first (warms any lazy state), then vector; both
                # runs see the identical stream and parameters.
                scalar_s, scalar = best_of(
                    replay, spec, stream, params, metric, "scalar", driver
                )
                vector_s, vector = best_of(
                    replay, spec, stream, params, metric, "vector", driver
                )
                assert scalar.to_dict() == vector.to_dict(), (name, mlabel)
                measured.append(
                    (name, mlabel, len(stream), scalar_s, vector_s)
                )
            # The competitive baseline (watermark candidates + sub-replay).
            scalar_s, scalar = best_of(
                replay_competitive, spec, stream, "scalar"
            )
            vector_s, vector = best_of(
                replay_competitive, spec, stream, "vector"
            )
            assert scalar.to_dict() == vector.to_dict(), (name, "Comp")
            measured.append((name, "Comp", len(stream), scalar_s, vector_s))
            # Traced Mig/Rep: batched emission vs the inline scalar path;
            # the logs must carry the same number of events on top of
            # identical results (full log identity is the test suites' job).
            scalar_s, scalar, scalar_n = best_of(
                replay_traced, spec, stream, params, "scalar"
            )
            vector_s, vector, vector_n = best_of(
                replay_traced, spec, stream, params, "vector"
            )
            assert scalar.to_dict() == vector.to_dict(), (name, "Traced")
            assert scalar_n == vector_n, (name, "Traced", scalar_n, vector_n)
            measured.append((name, "Traced", len(stream), scalar_s, vector_s))
            # The four PT policies (walk-candidacy fastpath).
            walk_driver = derive_tlb_trace(stream, n_cpus=spec.n_cpus)
            scalar_s, scalar = best_of(
                replay_ptpol, spec, stream, "scalar", walk_driver
            )
            vector_s, vector = best_of(
                replay_ptpol, spec, stream, "vector", walk_driver
            )
            assert scalar == vector, (name, "PT")
            measured.append((name, "PT", len(stream), scalar_s, vector_s))
        return measured

    measured = once(compute)

    rows = []
    total_scalar = total_vector = 0.0
    path_totals = {}
    for name, mlabel, events, scalar_s, vector_s in measured:
        total_scalar += scalar_s
        total_vector += vector_s
        ps, pv = path_totals.get(mlabel, (0.0, 0.0))
        path_totals[mlabel] = (ps + scalar_s, pv + vector_s)
        rows.append(
            [f"{name}/{mlabel}", events, scalar_s, vector_s,
             scalar_s / vector_s]
        )
    speedup = total_scalar / total_vector
    rows.append(
        ["(all)", sum(m[2] for m in measured), total_scalar, total_vector,
         speedup]
    )

    # The fastpath has to pay for itself decisively at full scale; at
    # reduced REPRO_BENCH_SCALE the fixed per-segment costs loom larger,
    # so only a net win is required there.  (The aggregate now spans the
    # full path matrix — the sub-replay-heavy competitive, traced and PT
    # cells pull it below the dynamic-only cells' ratio by design.)
    floor = 2.0 if BENCH_SCALE >= 1.0 else 1.2

    run = report("replay_fastpath", scale=BENCH_SCALE, floor=floor)
    for name, mlabel, events, scalar_s, vector_s in measured:
        run.metric(f"speedup.{name}.{mlabel}", scalar_s / vector_s, unit="x")
    # Per-path aggregates (FC/ST/TLB/Comp/Traced/PT): informational, but
    # the committed baseline must show every newly vectorized path paying
    # off on its own, not hiding behind the dynamic cells.
    path_labels = {"FC": "dynamic_fc", "ST": "dynamic_st",
                   "TLB": "tlbmetric", "Comp": "competitive",
                   "Traced": "traced", "PT": "ptpol"}
    for mlabel, (ps, pv) in path_totals.items():
        run.metric(f"speedup.path.{path_labels[mlabel]}", ps / pv, unit="x")
    # Only the aggregate ratio is gated: it is machine-portable, while
    # absolute seconds and per-workload ratios are informational.
    run.metric("speedup.all", speedup, unit="x", tolerance=0.5)
    run.metric("wall_s.scalar", total_scalar, unit="s", direction="lower")
    run.metric("wall_s.vector", total_vector, unit="s", direction="lower")
    run.metric("events.total", sum(m[2] for m in measured), unit="events")
    run.emit(
        format_table(
            "Replay paths: scalar core vs vectorized fastpath "
            "(byte-identical results)",
            ["Workload/Path", "Events", "Scalar (s)", "Vector (s)",
             "Speedup"],
            rows,
            float_format="{:.3f}",
        ),
    )

    assert speedup >= floor, (
        f"fastpath speedup only {speedup:.2f}x at scale {BENCH_SCALE} "
        f"(floor {floor}x)"
    )

"""Replay fastpath: the vectorized engine vs the scalar core.

docs/PERFORMANCE.md's headline claim — the batched engine replays a
dynamic Mig/Rep run several times faster than the scalar core while
producing byte-identical results — is backed by this bench.  Every user
workload replays under both engines (same trace, same parameters) with
full-cache and sampled-TLB metrics; the results are compared exactly
with ``to_dict()`` and the wall-clock ratio is reported per workload.
"""

import time

from conftest import BENCH_SCALE, USER_WORKLOADS, params_for

from repro.analysis.tables import format_table
from repro.policy.metrics import FULL_CACHE, SAMPLED_TLB
from repro.trace.policysim import PolicySimConfig, TracePolicySimulator
from repro.trace.tlbsim import derive_tlb_trace

METRICS = {"FC": FULL_CACHE, "ST": SAMPLED_TLB}


def replay(spec, stream, params, metric, engine, driver):
    sim = TracePolicySimulator(
        PolicySimConfig(
            n_cpus=spec.n_cpus, n_nodes=spec.n_nodes, engine=engine
        )
    )
    t0 = time.perf_counter()
    result = sim.simulate_dynamic(
        stream, params, metric=metric, driver_trace=driver
    )
    return time.perf_counter() - t0, result


def test_replay_fastpath_speedup(store, report, once):
    def compute():
        measured = []
        for name in USER_WORKLOADS:
            spec, trace = store.workload(name)
            stream = trace.user_only()
            params = params_for(name)
            for mlabel, metric in METRICS.items():
                # The TLB driver trace is derived once, outside the timed
                # region: it is metric preparation shared verbatim by both
                # engines, and timing it would only dilute the replay
                # comparison this bench exists to make.
                driver = (
                    derive_tlb_trace(stream, n_cpus=spec.n_cpus)
                    if metric.uses_tlb
                    else None
                )
                # Scalar first (warms any lazy state), then vector; both
                # runs see the identical stream and parameters.
                scalar_s, scalar = replay(
                    spec, stream, params, metric, "scalar", driver
                )
                vector_s, vector = replay(
                    spec, stream, params, metric, "vector", driver
                )
                assert scalar.to_dict() == vector.to_dict(), (name, mlabel)
                measured.append(
                    (name, mlabel, len(stream), scalar_s, vector_s)
                )
        return measured

    measured = once(compute)

    rows = []
    total_scalar = total_vector = 0.0
    for name, mlabel, events, scalar_s, vector_s in measured:
        total_scalar += scalar_s
        total_vector += vector_s
        rows.append(
            [f"{name}/{mlabel}", events, scalar_s, vector_s,
             scalar_s / vector_s]
        )
    speedup = total_scalar / total_vector
    rows.append(
        ["(all)", sum(m[2] for m in measured), total_scalar, total_vector,
         speedup]
    )

    # The fastpath has to pay for itself decisively at full scale; at
    # reduced REPRO_BENCH_SCALE the fixed per-segment costs loom larger,
    # so only a net win is required there.
    floor = 3.0 if BENCH_SCALE >= 1.0 else 1.2

    run = report("replay_fastpath", scale=BENCH_SCALE, floor=floor)
    for name, mlabel, events, scalar_s, vector_s in measured:
        run.metric(f"speedup.{name}.{mlabel}", scalar_s / vector_s, unit="x")
    # Only the aggregate ratio is gated: it is machine-portable, while
    # absolute seconds and per-workload ratios are informational.
    run.metric("speedup.all", speedup, unit="x", tolerance=0.5)
    run.metric("wall_s.scalar", total_scalar, unit="s", direction="lower")
    run.metric("wall_s.vector", total_vector, unit="s", direction="lower")
    run.metric("events.total", sum(m[2] for m in measured), unit="events")
    run.emit(
        format_table(
            "Dynamic replay: scalar core vs vectorized fastpath "
            "(Mig/Rep, byte-identical results)",
            ["Workload/Metric", "Events", "Scalar (s)", "Vector (s)",
             "Speedup"],
            rows,
            float_format="{:.3f}",
        ),
    )

    assert speedup >= floor, (
        f"fastpath speedup only {speedup:.2f}x at scale {BENCH_SCALE} "
        f"(floor {floor}x)"
    )

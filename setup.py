"""Setuptools shim: lets environments without the ``wheel`` package do an
editable install via ``python setup.py develop``.  Configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
